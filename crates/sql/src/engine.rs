//! The `Database` façade: catalog + SQL execution + UDx + stored procedures.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use vertexica_common::sync::{AtomicBool, AtomicUsize, Condvar, Mutex, Ordering, RwLock};

use vertexica_common::runtime::{Scope, WorkerPool};
use vertexica_storage::{
    partition::{hash_partition, split_batch, StreamingPartitioner},
    Catalog, ColumnPredicate, Field, RecordBatch, Row, Schema, TableOptions, Value,
};

use crate::ast::{InsertSource, Statement};
use crate::error::{SqlError, SqlResult};
use crate::expr::PhysExpr;
use crate::functions::{FunctionRegistry, ScalarFunction};
use crate::optimizer::optimize;
use crate::parser::{parse_script, parse_statement};
use crate::physical::{execute, ExecContext, JoinBuild};
use crate::planner::Planner;
use crate::udf::TransformUdf;

/// Result of executing a statement.
#[derive(Debug)]
pub enum QueryResult {
    /// A SELECT result.
    Rows { schema: Arc<Schema>, batches: Vec<RecordBatch> },
    /// Row count affected by DML.
    Affected(usize),
    /// DDL success.
    Ok,
}

impl QueryResult {
    /// Unwraps row results.
    pub fn into_batches(self) -> SqlResult<Vec<RecordBatch>> {
        match self {
            QueryResult::Rows { batches, .. } => Ok(batches),
            other => Err(SqlError::Execution(format!("expected rows, got {other:?}"))),
        }
    }

    /// All result rows as value vectors.
    pub fn rows(&self) -> Vec<Vec<Value>> {
        match self {
            QueryResult::Rows { batches, .. } => batches.iter().flat_map(|b| b.rows()).collect(),
            _ => Vec::new(),
        }
    }

    pub fn affected(&self) -> usize {
        match self {
            QueryResult::Affected(n) => *n,
            _ => 0,
        }
    }
}

/// A stored procedure: Rust code running *inside* the database with full
/// access to it — exactly how Vertexica's coordinator is deployed (§2.2).
pub type Procedure = Arc<dyn Fn(&Database, &[Value]) -> SqlResult<Value> + Send + Sync>;

/// An embedded relational database instance.
pub struct Database {
    catalog: Arc<Catalog>,
    functions: RwLock<FunctionRegistry>,
    transforms: RwLock<HashMap<String, Arc<dyn TransformUdf>>>,
    procedures: RwLock<HashMap<String, Procedure>>,
    /// The shared parallel runtime (default size: cores). One persistent
    /// pool serves every transform-UDF invocation and the coordinator's
    /// superstep loop — no per-call thread spawning.
    runtime: Arc<WorkerPool>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    pub fn new() -> Self {
        Self::with_runtime(Arc::new(WorkerPool::with_default_size()))
    }

    /// Builds a database on an existing runtime, so several engines can
    /// share one pool.
    pub fn with_runtime(runtime: Arc<WorkerPool>) -> Self {
        Self::with_catalog_and_runtime(Arc::new(Catalog::new()), runtime)
    }

    fn with_catalog_and_runtime(catalog: Arc<Catalog>, runtime: Arc<WorkerPool>) -> Self {
        Database {
            catalog,
            functions: RwLock::new(FunctionRegistry::new()),
            transforms: RwLock::new(HashMap::new()),
            procedures: RwLock::new(HashMap::new()),
            runtime,
        }
    }

    /// Opens (or creates) a **durable** database rooted at `dir`: recovers
    /// the catalog from the last checkpoint plus the committed write-ahead
    /// log tail, then keeps logging every mutation so a crash at any point
    /// loses nothing that was acknowledged. `fsync` defaults to on; set
    /// `VERTEXICA_DURABLE_SYNC=0` to trade crash-safety against raw power
    /// loss for speed (process-kill safety is unaffected).
    pub fn open(dir: impl AsRef<std::path::Path>) -> SqlResult<Self> {
        Self::open_with(dir, Arc::new(WorkerPool::with_default_size()))
    }

    /// [`open`](Self::open) on an existing runtime pool.
    pub fn open_with(
        dir: impl AsRef<std::path::Path>,
        runtime: Arc<WorkerPool>,
    ) -> SqlResult<Self> {
        let sync = !matches!(
            std::env::var("VERTEXICA_DURABLE_SYNC").as_deref(),
            Ok("0") | Ok("false") | Ok("off")
        );
        let catalog = vertexica_storage::open_durable(dir.as_ref(), sync)?;
        Ok(Self::with_catalog_and_runtime(catalog, runtime))
    }

    /// Whether this database persists mutations through a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.catalog.is_durable()
    }

    /// Flushes every table to its on-disk segment file and truncates the
    /// write-ahead log. No-op on a non-durable database.
    pub fn checkpoint(&self) -> SqlResult<()> {
        Ok(self.catalog.checkpoint()?)
    }

    /// Cumulative durability counters (records logged, bytes written,
    /// flushes, commits, checkpoints). `None` on a non-durable database.
    pub fn durability_stats(&self) -> Option<vertexica_storage::DurabilityStats> {
        self.catalog.wal_sink().map(|w| w.stats())
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The shared worker pool owned by this database.
    pub fn runtime(&self) -> &Arc<WorkerPool> {
        &self.runtime
    }

    /// Resizes the shared pool used for transform-UDF execution.
    pub fn set_worker_threads(&self, n: usize) {
        self.runtime.resize(n.max(1));
    }

    pub fn worker_threads(&self) -> usize {
        self.runtime.size()
    }

    /// Registers a scalar SQL function.
    pub fn register_scalar(&self, f: ScalarFunction) {
        self.functions.write().register(f);
    }

    /// Registers a transform UDF (Vertica UDx equivalent).
    pub fn register_transform(&self, udf: Arc<dyn TransformUdf>) {
        self.transforms.write().insert(udf.name().to_ascii_lowercase(), udf);
    }

    /// Registers a stored procedure.
    pub fn register_procedure(&self, name: &str, proc_: Procedure) {
        self.procedures.write().insert(name.to_ascii_lowercase(), proc_);
    }

    /// Invokes a stored procedure by name.
    pub fn call_procedure(&self, name: &str, args: &[Value]) -> SqlResult<Value> {
        let proc_ = self
            .procedures
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| SqlError::Execution(format!("no such procedure: {name}")))?;
        proc_(self, args)
    }

    /// Parses, plans, optimizes and executes one SQL statement.
    pub fn execute(&self, sql: &str) -> SqlResult<QueryResult> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(stmt)
    }

    /// Executes a `;`-separated script, returning the last statement's result.
    pub fn execute_script(&self, sql: &str) -> SqlResult<QueryResult> {
        let stmts = parse_script(sql)?;
        let mut last = QueryResult::Ok;
        for stmt in stmts {
            last = self.execute_statement(stmt)?;
        }
        Ok(last)
    }

    /// Convenience: run a query and collect all rows.
    pub fn query(&self, sql: &str) -> SqlResult<Vec<Vec<Value>>> {
        Ok(self.execute(sql)?.rows())
    }

    /// Convenience: run a query expected to return one scalar.
    pub fn query_scalar(&self, sql: &str) -> SqlResult<Value> {
        let rows = self.query(sql)?;
        rows.first()
            .and_then(|r| r.first())
            .cloned()
            .ok_or_else(|| SqlError::Execution("query returned no rows".into()))
    }

    /// Convenience: one scalar as i64.
    pub fn query_int(&self, sql: &str) -> SqlResult<i64> {
        match self.query_scalar(sql)? {
            Value::Int(v) => Ok(v),
            Value::Float(v) => Ok(v as i64),
            other => Err(SqlError::Execution(format!("expected integer, got {other}"))),
        }
    }

    fn execute_statement(&self, stmt: Statement) -> SqlResult<QueryResult> {
        match stmt {
            Statement::Query(q) => {
                let functions = self.functions.read().clone();
                let mut planner = Planner::new(&self.catalog, &functions);
                let plan = planner.plan_query(&q)?;
                let plan = optimize(plan)?;
                let schema = plan.schema();
                let ctx = ExecContext { catalog: &self.catalog };
                let batches = execute(&plan, &ctx)?;
                Ok(QueryResult::Rows { schema, batches })
            }
            Statement::CreateTable { name, columns, order_by, if_not_exists } => {
                if if_not_exists && self.catalog.contains(&name) {
                    return Ok(QueryResult::Ok);
                }
                let fields: Vec<Field> = columns
                    .iter()
                    .map(|c| Field { name: c.name.clone(), dtype: c.dtype, nullable: c.nullable })
                    .collect();
                let schema = Schema::new(fields);
                let mut options = TableOptions::default();
                for key in &order_by {
                    let idx = schema.index_of(key).ok_or_else(|| {
                        SqlError::Plan(format!("ORDER BY column {key} not in table"))
                    })?;
                    options.sort_key.push(idx);
                }
                self.catalog.create_table(&name, schema, options)?;
                Ok(QueryResult::Ok)
            }
            Statement::CreateTableAs { name, query, if_not_exists } => {
                if if_not_exists && self.catalog.contains(&name) {
                    return Ok(QueryResult::Ok);
                }
                let functions = self.functions.read().clone();
                let mut planner = Planner::new(&self.catalog, &functions);
                let plan = planner.plan_query(&query)?;
                let plan = optimize(plan)?;
                let schema = plan.schema();
                let ctx = ExecContext { catalog: &self.catalog };
                let batches = execute(&plan, &ctx)?;
                let table = self.catalog.create_table(&name, schema, TableOptions::default())?;
                let mut guard = table.write();
                let mut n = 0usize;
                for b in &batches {
                    n += b.num_rows();
                    guard.append_batch(b)?;
                }
                Ok(QueryResult::Affected(n))
            }
            Statement::DropTable { name, if_exists } => {
                if if_exists {
                    self.catalog.drop_table_if_exists(&name)?;
                } else {
                    self.catalog.drop_table(&name)?;
                }
                Ok(QueryResult::Ok)
            }
            Statement::Insert { table, columns, source } => {
                self.execute_insert(&table, &columns, source)
            }
            Statement::Update { table, assignments, filter } => {
                self.execute_update(&table, &assignments, filter.as_ref())
            }
            Statement::Delete { table, filter } => self.execute_delete(&table, filter.as_ref()),
        }
    }

    fn execute_insert(
        &self,
        table: &str,
        columns: &[String],
        source: InsertSource,
    ) -> SqlResult<QueryResult> {
        let table_ref = self.catalog.get(table)?;
        let schema = table_ref.read().schema().clone();

        // Map provided columns to table positions.
        let positions: Vec<usize> = if columns.is_empty() {
            (0..schema.len()).collect()
        } else {
            columns
                .iter()
                .map(|c| {
                    schema
                        .index_of(c)
                        .ok_or_else(|| SqlError::Plan(format!("unknown column {c} in INSERT")))
                })
                .collect::<SqlResult<Vec<_>>>()?
        };

        let make_full_row = |partial: Vec<Value>| -> SqlResult<Row> {
            if partial.len() != positions.len() {
                return Err(SqlError::Plan(format!(
                    "INSERT expects {} values, got {}",
                    positions.len(),
                    partial.len()
                )));
            }
            let mut row: Row = vec![Value::Null; schema.len()];
            for (v, &p) in partial.into_iter().zip(&positions) {
                row[p] = v;
            }
            Ok(row)
        };

        match source {
            InsertSource::Values(rows) => {
                let functions = self.functions.read().clone();
                let planner = Planner::new(&self.catalog, &functions);
                let empty = crate::planner::Scope::default();
                let mut full_rows = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut vals = Vec::with_capacity(row.len());
                    for e in &row {
                        let phys = planner.plan_expr(e, &empty)?;
                        vals.push(phys.eval_scalar()?);
                    }
                    full_rows.push(make_full_row(vals)?);
                }
                let n = table_ref.write().insert_rows(full_rows)?;
                Ok(QueryResult::Affected(n))
            }
            InsertSource::Query(q) => {
                let functions = self.functions.read().clone();
                let mut planner = Planner::new(&self.catalog, &functions);
                let plan = planner.plan_query(&q)?;
                let plan = optimize(plan)?;
                let ctx = ExecContext { catalog: &self.catalog };
                let batches = execute(&plan, &ctx)?;
                let mut n = 0usize;
                let full_width = positions.len() == schema.len()
                    && positions.iter().enumerate().all(|(i, &p)| i == p);
                let mut guard = table_ref.write();
                for b in &batches {
                    if b.num_columns() != positions.len() {
                        return Err(SqlError::Plan(format!(
                            "INSERT SELECT arity mismatch: expected {}, got {}",
                            positions.len(),
                            b.num_columns()
                        )));
                    }
                    n += b.num_rows();
                    if full_width {
                        guard.append_batch(b)?;
                    } else {
                        let rows: Vec<Row> = (0..b.num_rows())
                            .map(|i| make_full_row(b.row(i)))
                            .collect::<SqlResult<Vec<_>>>()?;
                        guard.insert_rows(rows)?;
                    }
                }
                Ok(QueryResult::Affected(n))
            }
        }
    }

    fn execute_update(
        &self,
        table: &str,
        assignments: &[(String, crate::ast::Expr)],
        filter: Option<&crate::ast::Expr>,
    ) -> SqlResult<QueryResult> {
        let table_ref = self.catalog.get(table)?;
        let schema = table_ref.read().schema().clone();
        let functions = self.functions.read().clone();
        let planner = Planner::new(&self.catalog, &functions);

        let planned: Vec<(usize, PhysExpr)> = assignments
            .iter()
            .map(|(col, e)| {
                let idx = schema
                    .index_of(col)
                    .ok_or_else(|| SqlError::Plan(format!("unknown column {col} in UPDATE")))?;
                let phys = planner.plan_expr_for_table(e, &schema, table)?;
                Ok((idx, phys))
            })
            .collect::<SqlResult<Vec<_>>>()?;
        let pred = filter.map(|f| planner.plan_expr_for_table(f, &schema, table)).transpose()?;

        // Snapshot a rowid cursor under a brief read lock, decode and
        // compute updates with the lock released, then apply under a write
        // lock.
        let mut cursor = {
            let guard = table_ref.read();
            guard.scan_cursor(None, &[])?
        };
        let mut updates: Vec<(u64, Row)> = Vec::new();
        while let Some((batch, rowids)) = cursor.next_with_rowids()? {
            let mask = match &pred {
                Some(p) => p.eval_predicate(&batch)?,
                None => vertexica_storage::Bitmap::ones(batch.num_rows()),
            };
            if !mask.any() {
                continue;
            }
            // Evaluate assignment expressions vectorized over the batch.
            let new_cols: Vec<(usize, vertexica_storage::Column)> = planned
                .iter()
                .map(|(idx, e)| Ok((*idx, e.eval(&batch)?)))
                .collect::<SqlResult<Vec<_>>>()?;
            for i in mask.iter_ones() {
                let mut row = batch.row(i);
                for (idx, col) in &new_cols {
                    row[*idx] = col.value(i);
                }
                updates.push((rowids[i], row));
            }
        }
        let n = table_ref.write().update_rows(updates)?;
        Ok(QueryResult::Affected(n))
    }

    fn execute_delete(
        &self,
        table: &str,
        filter: Option<&crate::ast::Expr>,
    ) -> SqlResult<QueryResult> {
        let table_ref = self.catalog.get(table)?;
        let schema = table_ref.read().schema().clone();
        let functions = self.functions.read().clone();
        let planner = Planner::new(&self.catalog, &functions);
        let pred = filter.map(|f| planner.plan_expr_for_table(f, &schema, table)).transpose()?;

        let Some(pred) = pred else {
            // Unqualified DELETE: truncate.
            let mut guard = table_ref.write();
            let n = guard.num_rows();
            guard.truncate()?;
            return Ok(QueryResult::Affected(n));
        };

        // Same lock-snapshot protocol as UPDATE: decode happens unlocked.
        let mut cursor = {
            let guard = table_ref.read();
            guard.scan_cursor(None, &[])?
        };
        let mut doomed: Vec<u64> = Vec::new();
        while let Some((batch, rowids)) = cursor.next_with_rowids()? {
            let mask = pred.eval_predicate(&batch)?;
            for i in mask.iter_ones() {
                doomed.push(rowids[i]);
            }
        }
        let n = table_ref.write().delete_rowids(&doomed)?;
        Ok(QueryResult::Affected(n))
    }

    /// Runs a registered transform UDF over input batches, hash-partitioned on
    /// `partition_by` into `num_partitions`, with worker-thread parallelism —
    /// the paper's worker invocation (§2.2–§2.3: parallel workers + vertex
    /// batching).
    ///
    /// Output batches preserve partition order.
    pub fn run_transform(
        &self,
        name: &str,
        input: Vec<RecordBatch>,
        partition_by: &[usize],
        num_partitions: usize,
    ) -> SqlResult<Vec<RecordBatch>> {
        let udf = self
            .transforms
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| SqlError::Udf(format!("no such transform: {name}")))?;

        let partitions = if num_partitions <= 1 || partition_by.is_empty() {
            vec![input]
        } else {
            hash_partition(&input, partition_by, num_partitions)?
        };
        self.run_transform_partitions(&udf, partitions)
    }

    /// Runs a transform over pre-partitioned input on the shared runtime
    /// pool, streaming each partition's output to `sink` **as soon as that
    /// partition finishes** instead of collecting everything first. Each
    /// partition is one pool task (serial within a partition, parallel
    /// across partitions — the paper's vertex batching); the per-worker
    /// deques load-balance uneven partitions by stealing. This is the
    /// engine's streaming execution primitive: the coordinator's superstep
    /// loop applies worker outputs incrementally through it, and
    /// [`run_transform_partitions`](Self::run_transform_partitions) is a
    /// thin order-restoring wrapper over it.
    ///
    /// `sink` is called once per non-empty partition with
    /// `(partition_index, output_batches)`, from whichever worker thread
    /// finished the partition (so it must be `Sync`; calls may interleave
    /// across partitions but each partition is delivered exactly once).
    /// Completion order is not deterministic. The first error — from the UDF
    /// or from the sink — is returned; partitions not yet started are then
    /// skipped and in-flight ones have their sink deliveries suppressed.
    /// With one worker
    /// (or one non-empty partition) execution falls back to sequential
    /// inline runs on the calling thread.
    pub fn run_transform_streamed(
        &self,
        udf: &Arc<dyn TransformUdf>,
        partitions: Vec<Vec<RecordBatch>>,
        sink: &(dyn Fn(usize, Vec<RecordBatch>) -> SqlResult<()> + Sync),
    ) -> SqlResult<()> {
        let work: Vec<(usize, Vec<RecordBatch>)> =
            partitions.into_iter().enumerate().filter(|(_, p)| !p.is_empty()).collect();
        if work.len() <= 1 || self.runtime.size() <= 1 {
            for (idx, p) in work {
                sink(idx, udf.execute(p)?)?;
            }
            return Ok(());
        }
        let failure: Mutex<Option<SqlError>> = Mutex::new(None);
        self.runtime.scope(|scope| {
            for (idx, p) in work {
                let failure = &failure;
                scope.spawn(move || {
                    if failure.lock().is_some() {
                        return; // an earlier partition already failed: skip the work
                    }
                    let result = udf.execute(p).and_then(|out| {
                        if failure.lock().is_some() {
                            return Ok(()); // a failure landed while we computed
                        }
                        sink(idx, out)
                    });
                    if let Err(e) = result {
                        let mut slot = failure.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                });
            }
        });
        match failure.into_inner() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Runs a transform over pre-partitioned input on the shared runtime
    /// pool, collecting every partition's output. Output preserves partition
    /// order. Built on [`run_transform_streamed`](Self::run_transform_streamed);
    /// prefer that entry point when outputs can be consumed incrementally.
    pub fn run_transform_partitions(
        &self,
        udf: &Arc<dyn TransformUdf>,
        partitions: Vec<Vec<RecordBatch>>,
    ) -> SqlResult<Vec<RecordBatch>> {
        let collected: Mutex<Vec<(usize, Vec<RecordBatch>)>> = Mutex::new(Vec::new());
        self.run_transform_streamed(udf, partitions, &|idx, out| {
            collected.lock().push((idx, out));
            Ok(())
        })?;
        let mut collected = collected.into_inner();
        collected.sort_by_key(|(idx, _)| *idx);
        Ok(collected.into_iter().flat_map(|(_, out)| out).collect())
    }

    /// Fully pipelined transform execution: overlaps input production,
    /// partition scatter and per-partition compute on the shared pool.
    ///
    /// `produce` is called once, on the calling thread, with a chunk sink;
    /// every chunk it emits is handed to a **scatter task** on the pool,
    /// which hashes the chunk's rows into per-partition pieces
    /// ([`vertexica_storage::partition::split_batch`], outside any lock) and
    /// files them with a shared sealing
    /// [`StreamingPartitioner`]. The moment a
    /// partition's last expected row lands (`expected_rows`, from the
    /// caller's source prescan), the scatter task **spawns that partition's
    /// compute task from the worker it is running on** — a continuation
    /// spawn onto the same scope — so compute genuinely starts while the
    /// producer is still streaming later chunks. Partitions not covered by
    /// a plan (`expected_rows = None`, e.g. the 3-way-join replay) are
    /// dispatched when production and scattering have both finished.
    ///
    /// `sink` has the same contract as in
    /// [`run_transform_streamed`](Self::run_transform_streamed): called once
    /// per non-empty partition from whichever worker finished it, in
    /// nondeterministic order; the first error (producer, scatter, UDF or
    /// sink) wins and suppresses all later work. On a single-worker pool the
    /// whole dataflow degenerates to the sequential scatter-then-compute
    /// order (no overlap, trivially equivalent).
    ///
    /// Two guards keep the dataflow honest. **Backpressure**: at most
    /// `2 × pool size` produced chunks may be in flight (spawned but not yet
    /// scattered) — the producer blocks until a scatter task frees a slot,
    /// so a fast producer cannot queue the whole input in worker deques and
    /// void the streaming memory bound. **Plan enforcement**: with
    /// `expected_rows`, a partition receiving *more* rows than planned
    /// errors at the scatter, and a partition still waiting for rows when
    /// the stream ends (an overstated plan) errors at the drain — silent
    /// truncation and silent degradation are both impossible.
    ///
    /// The returned [`PipelinedReport`] carries the overlap accounting: how
    /// long compute tasks ran concurrently with the assemble window (start
    /// of production → last chunk scattered).
    /// `produce` returns its **peak resident source bytes** gauge: the
    /// largest amount of un-emitted source data (e.g. decoded scan batches)
    /// it ever held at once while producing. A pull-based producer reports
    /// one batch; an eager one reports a whole table. The value is passed
    /// through as [`PipelinedReport::peak_resident_scan_bytes`] (0 if the
    /// producer doesn't measure).
    pub fn run_transform_pipelined(
        &self,
        udf: &Arc<dyn TransformUdf>,
        key_columns: Vec<usize>,
        num_partitions: usize,
        expected_rows: Option<Vec<u64>>,
        produce: &mut dyn FnMut(&mut ChunkSink<'_>) -> SqlResult<usize>,
        sink: &(dyn Fn(usize, Vec<RecordBatch>) -> SqlResult<()> + Sync),
    ) -> SqlResult<PipelinedReport> {
        let num_partitions = num_partitions.max(1);
        let start = Instant::now();
        let planned = expected_rows.is_some();
        let partitioner = match expected_rows {
            Some(plan) => {
                StreamingPartitioner::with_expected_rows(key_columns.clone(), num_partitions, plan)
            }
            None => StreamingPartitioner::new(key_columns.clone(), num_partitions),
        };

        if self.runtime.size() <= 1 {
            // Sequential fallback: scatter inline, compute after the stream
            // ends. Nothing runs concurrently, so overlap is honestly zero.
            let mut partitioner = partitioner;
            let mut input_bytes = 0usize;
            let mut peak_chunk_bytes = 0usize;
            let mut sealed: Vec<(usize, Vec<RecordBatch>)> = Vec::new();
            let peak_resident_scan_bytes = produce(&mut |chunk| {
                let bytes = chunk.estimated_bytes();
                input_bytes += bytes;
                peak_chunk_bytes = peak_chunk_bytes.max(bytes);
                let pieces = split_batch(&chunk, &key_columns, num_partitions)?;
                sealed.extend(partitioner.absorb(pieces)?);
                Ok(())
            })?;
            if planned && !partitioner.fully_sealed() {
                return Err(plan_underdelivery_error());
            }
            sealed.extend(partitioner.drain_unsealed());
            let assemble_secs = start.elapsed().as_secs_f64();
            let compute_start = Instant::now();
            sealed.sort_by_key(|(idx, _)| *idx);
            let had_work = !sealed.is_empty();
            for (idx, batches) in sealed {
                sink(idx, udf.execute(batches)?)?;
            }
            return Ok(PipelinedReport {
                assemble_secs,
                compute_secs: if had_work { compute_start.elapsed().as_secs_f64() } else { 0.0 },
                overlap_secs: 0.0,
                input_bytes,
                peak_chunk_bytes,
                peak_resident_scan_bytes,
                peak_inflight_chunks: usize::from(input_bytes > 0),
                early_dispatches: 0,
            });
        }

        let shared = PipeShared {
            udf,
            sink,
            partitioner: Mutex::new(partitioner),
            key_columns,
            num_partitions,
            planned,
            failure: Mutex::new(None),
            windows: Mutex::new(Vec::new()),
            scatter_pending: AtomicUsize::new(0),
            produced_all: AtomicBool::new(false),
            assemble_end: Mutex::new(None),
            early_dispatches: AtomicUsize::new(0),
            inflight: Mutex::new(0),
            inflight_freed: Condvar::new(),
            inflight_cap: self.runtime.size().saturating_mul(2).max(2),
        };
        let mut input_bytes = 0usize;
        let mut peak_chunk_bytes = 0usize;
        let mut peak_inflight_chunks = 0usize;
        let mut peak_resident_scan_bytes = 0usize;

        self.runtime.scope(|scope| {
            let shared = &shared;
            let result = produce(&mut |chunk| {
                if let Some(e) = shared.failure.lock().as_ref() {
                    // Fail fast: no point streaming further chunks.
                    return Err(SqlError::Execution(format!("pipelined run failed: {e}")));
                }
                let bytes = chunk.estimated_bytes();
                input_bytes += bytes;
                peak_chunk_bytes = peak_chunk_bytes.max(bytes);
                {
                    // Backpressure: never let more than `inflight_cap`
                    // produced chunks sit unscattered in worker deques —
                    // that would re-materialize the input the streaming
                    // pipeline exists to avoid. Progress is guaranteed:
                    // every spawned scatter task eventually runs and frees
                    // its slot (even when an earlier failure short-circuits
                    // its work).
                    let mut inflight = shared.inflight.lock();
                    while *inflight >= shared.inflight_cap {
                        inflight = shared.inflight_freed.wait(inflight);
                    }
                    *inflight += 1;
                    peak_inflight_chunks = peak_inflight_chunks.max(*inflight);
                }
                shared.scatter_pending.fetch_add(1, Ordering::SeqCst);
                scope.spawn(move || {
                    if shared.failure.lock().is_none() {
                        let sealed =
                            split_batch(&chunk, &shared.key_columns, shared.num_partitions)
                                .map_err(SqlError::from)
                                .and_then(|pieces| {
                                    shared.partitioner.lock().absorb(pieces).map_err(Into::into)
                                });
                        match sealed {
                            Ok(sealed) => pipe_dispatch(shared, scope, sealed, true),
                            Err(e) => shared.fail(e),
                        }
                    }
                    {
                        let mut inflight = shared.inflight.lock();
                        *inflight -= 1;
                        shared.inflight_freed.notify_one();
                    }
                    // Last scatter out (with production finished) closes the
                    // assemble window and dispatches open-ended partitions.
                    if shared.scatter_pending.fetch_sub(1, Ordering::SeqCst) == 1
                        && shared.produced_all.load(Ordering::SeqCst)
                    {
                        pipe_finish_assemble(shared, scope);
                    }
                });
                Ok(())
            });
            match result {
                Ok(resident) => peak_resident_scan_bytes = resident,
                Err(e) => shared.fail(e),
            }
            shared.produced_all.store(true, Ordering::SeqCst);
            if shared.scatter_pending.load(Ordering::SeqCst) == 0 {
                pipe_finish_assemble(shared, scope);
            }
        });

        if let Some(e) = shared.failure.into_inner() {
            return Err(e);
        }
        let scope_end = Instant::now();
        let assemble_end = shared.assemble_end.into_inner().unwrap_or(scope_end);
        let windows = shared.windows.into_inner();
        let overlap_secs: f64 = windows
            .iter()
            .map(|(s, e)| e.min(&assemble_end).saturating_duration_since(*s).as_secs_f64())
            .sum();
        let compute_secs = windows
            .iter()
            .map(|(s, _)| *s)
            .min()
            .map(|first| scope_end.saturating_duration_since(first).as_secs_f64())
            .unwrap_or(0.0);
        Ok(PipelinedReport {
            assemble_secs: assemble_end.saturating_duration_since(start).as_secs_f64(),
            compute_secs,
            overlap_secs,
            input_bytes,
            peak_chunk_bytes,
            peak_resident_scan_bytes,
            peak_inflight_chunks,
            early_dispatches: shared.early_dispatches.load(Ordering::Relaxed),
        })
    }

    /// Segment-write fast path: encodes one ROS segment per batch **in
    /// parallel on the shared runtime pool** and atomically replaces
    /// `table`'s contents with exactly those segments (keeping its schema,
    /// options and catalog handle).
    ///
    /// This is the write-side sibling of
    /// [`run_transform_streamed`](Self::run_transform_streamed): where that
    /// primitive fans partition *reads/compute* out over the pool, this one
    /// fans the *table rebuild* out. The expensive work per segment —
    /// column coercion, zone maps, optional compression — happens off-table
    /// on pool workers; the commit is a single
    /// [`Catalog::replace_contents`] under one table write lock, so readers
    /// see either the complete old or the complete new table, never a torn
    /// mixture. Batches map to segments in input order; empty batches are
    /// dropped. Returns the number of rows in the new contents.
    ///
    /// Nothing is committed unless **every** segment builds successfully:
    /// the first build error aborts the whole replacement with the old
    /// contents untouched.
    ///
    /// Split into [`encode_segments_for`](Self::encode_segments_for) +
    /// [`commit_table_segments`](Self::commit_table_segments) for callers
    /// that must build segments for *several* tables before publishing any
    /// of them (the parallel apply path's cross-table commit protocol).
    pub fn replace_table_segmented(
        &self,
        table: &str,
        segment_batches: Vec<RecordBatch>,
    ) -> SqlResult<usize> {
        let segments = self.encode_segments_for(table, segment_batches)?;
        self.commit_table_segments(table, segments)
    }

    /// The encode half of [`replace_table_segmented`](Self::replace_table_segmented):
    /// builds one ROS segment per batch in parallel on the pool, against
    /// `table`'s current schema and options, without touching the table.
    pub fn encode_segments_for(
        &self,
        table: &str,
        segment_batches: Vec<RecordBatch>,
    ) -> SqlResult<Vec<vertexica_storage::Segment>> {
        let table_ref = self.catalog.get(table)?;
        let (schema, compress) = {
            let guard = table_ref.read();
            (guard.schema().clone(), guard.options().compress)
        };
        let built: Vec<vertexica_storage::StorageResult<vertexica_storage::Segment>> =
            self.runtime.map_indexed(segment_batches, |_, batch| {
                vertexica_storage::Segment::build(&schema, &batch, compress)
            });
        let mut segments = Vec::with_capacity(built.len());
        for seg in built {
            segments.push(seg?);
        }
        Ok(segments)
    }

    /// The commit half of [`replace_table_segmented`](Self::replace_table_segmented):
    /// atomically replaces `table`'s contents with the pre-built segments
    /// under one write lock. The only failure modes are shape mismatches
    /// against the live schema — encoding already happened.
    pub fn commit_table_segments(
        &self,
        table: &str,
        segments: Vec<vertexica_storage::Segment>,
    ) -> SqlResult<usize> {
        let table_ref = self.catalog.get(table)?;
        let (name, schema, options) = {
            let guard = table_ref.read();
            (guard.name().to_string(), guard.schema().clone(), guard.options().clone())
        };
        let mut fresh = vertexica_storage::Table::new(name, schema, options);
        let mut rows = 0usize;
        for seg in segments {
            rows += seg.num_rows();
            fresh.adopt_segment(seg)?;
        }
        self.catalog.replace_contents(table, fresh)?;
        Ok(rows)
    }

    /// Multi-table variant of [`commit_table_segments`](Self::commit_table_segments):
    /// publishes **all** the pre-built per-table contents in one atomic
    /// catalog commit. On a durable database the whole group rides a single
    /// WAL commit record, so recovery lands on either the complete old or
    /// the complete new superstep state — never a torn mixture. Returns the
    /// total row count across the new contents.
    pub fn commit_tables_segmented(
        &self,
        groups: Vec<(String, Vec<vertexica_storage::Segment>)>,
    ) -> SqlResult<usize> {
        let mut replacements = Vec::with_capacity(groups.len());
        let mut rows = 0usize;
        for (table, segments) in groups {
            let table_ref = self.catalog.get(&table)?;
            let (name, schema, options) = {
                let guard = table_ref.read();
                (guard.name().to_string(), guard.schema().clone(), guard.options().clone())
            };
            let mut fresh = vertexica_storage::Table::new(name, schema, options);
            for seg in segments {
                rows += seg.num_rows();
                fresh.adopt_segment(seg)?;
            }
            replacements.push((table, fresh));
        }
        self.catalog.replace_contents_many(replacements)?;
        Ok(rows)
    }

    /// Pull-based storage-level scan (bypasses SQL): snapshots a
    /// [`vertexica_storage::ScanCursor`] under a **briefly held** table read
    /// lock and returns it with the lock already released. Each
    /// [`ScanCursor::next_batch`](vertexica_storage::ScanCursor::next_batch)
    /// pull decodes one (zone-map-pruned, delete-filtered) segment, so a
    /// consumer's transient footprint is one in-flight batch and a slow
    /// consumer never blocks writers. This is the scan primitive behind the
    /// superstep assemble path and [`scan_table`](Self::scan_table).
    pub fn scan_cursor(
        &self,
        table: &str,
        projection: Option<&[usize]>,
        predicates: &[ColumnPredicate],
    ) -> SqlResult<vertexica_storage::ScanCursor> {
        let t = self.catalog.get(table)?;
        let guard = t.read();
        Ok(guard.scan_cursor(projection, predicates)?)
        // `guard` drops here: every decode happens lock-free on the cursor.
    }

    /// Direct storage-level scan helper (bypasses SQL) — used by the
    /// coordinator's hot paths. Eagerly drains a
    /// [`scan_cursor`](Self::scan_cursor), so the table lock is dropped
    /// before any segment is decoded.
    pub fn scan_table(
        &self,
        table: &str,
        projection: Option<&[usize]>,
        predicates: &[ColumnPredicate],
    ) -> SqlResult<Vec<RecordBatch>> {
        let mut cursor = self.scan_cursor(table, projection, predicates)?;
        let mut out = Vec::new();
        while let Some(batch) = cursor.next_batch()? {
            out.push(batch);
        }
        Ok(out)
    }

    /// Scans `build_table` (projected) through a cursor and hashes it once
    /// on `key_columns` into a reusable [`JoinBuild`] — the build half of
    /// the engine's streaming hash join. `key_columns` index the *projected*
    /// batch.
    pub fn hash_join_build(
        &self,
        build_table: &str,
        projection: Option<&[usize]>,
        key_columns: Vec<usize>,
    ) -> SqlResult<JoinBuild> {
        let mut cursor = self.scan_cursor(build_table, projection, &[])?;
        let schema = cursor.schema().clone();
        let mut batches = Vec::new();
        while let Some(batch) = cursor.next_batch()? {
            batches.push(batch);
        }
        let build = RecordBatch::concat(schema, &batches)?;
        Ok(JoinBuild::new(build, key_columns))
    }

    /// Streaming equi-join: pulls `probe_table` (projected) batch-by-batch
    /// through a scan cursor and probes `build` with each batch, emitting
    /// one joined batch (probe columns then build columns) per non-empty
    /// probe batch to `sink`. The build side was hashed exactly once (see
    /// [`hash_join_build`](Self::hash_join_build)); the probe side never
    /// materializes beyond the in-flight batch — the MonetDB/X100-style
    /// pull-based operator shape, with the same single/composite BIGINT
    /// fast paths (and per-row NULL-key skipping) as the eager SQL join.
    /// With `outer`, unmatched probe rows are emitted null-extended (LEFT
    /// JOIN semantics, probe side preserved).
    pub fn stream_hash_join(
        &self,
        probe_table: &str,
        probe_projection: Option<&[usize]>,
        probe_keys: &[usize],
        build: &JoinBuild,
        outer: bool,
        sink: &mut dyn FnMut(RecordBatch) -> SqlResult<()>,
    ) -> SqlResult<()> {
        let mut cursor = self.scan_cursor(probe_table, probe_projection, &[])?;
        let out_schema = {
            let mut fields = cursor.schema().fields.clone();
            for f in &build.batch().schema().fields {
                let mut f = f.clone();
                // The build side null-extends under an outer join.
                f.nullable = f.nullable || outer;
                fields.push(f);
            }
            Schema::new(fields)
        };
        while let Some(batch) = cursor.next_batch()? {
            let joined =
                crate::physical::join_probe_batch(&batch, build, probe_keys, outer, &out_schema)?;
            if joined.num_rows() > 0 {
                sink(joined)?;
            }
        }
        Ok(())
    }

    /// Direct bulk append (bypasses SQL) — used for graph loading.
    pub fn append_batches(&self, table: &str, batches: &[RecordBatch]) -> SqlResult<usize> {
        let t = self.catalog.get(table)?;
        let mut guard = t.write();
        let mut n = 0;
        for b in batches {
            n += b.num_rows();
            guard.append_batch(b)?;
        }
        Ok(n)
    }
}

/// The chunk consumer a [`Database::run_transform_pipelined`] producer is
/// handed: call it once per produced input chunk.
pub type ChunkSink<'a> = dyn FnMut(RecordBatch) -> SqlResult<()> + 'a;

/// What a [`Database::run_transform_pipelined`] call observed about its own
/// overlap. All times are wall-clock seconds.
#[derive(Debug, Clone, Default)]
pub struct PipelinedReport {
    /// Production start → last chunk scattered (the assemble window).
    pub assemble_secs: f64,
    /// First compute task start → last task finished. Overlaps
    /// [`assemble_secs`](Self::assemble_secs) by construction.
    pub compute_secs: f64,
    /// Total seconds compute tasks ran **while the assemble window was
    /// still open** — the quantity pipelining exists to create. Zero in the
    /// sequential fallback.
    pub overlap_secs: f64,
    /// Total produced input, in estimated bytes.
    pub input_bytes: usize,
    /// Largest single produced chunk, in estimated bytes.
    pub peak_chunk_bytes: usize,
    /// Producer-reported gauge: the most un-emitted **source** data (e.g.
    /// decoded scan batches) the producer ever held at once. With pull-based
    /// scan cursors this is one in-flight batch per source; the eager scan
    /// path holds a whole table's batches, so the gap between the two is the
    /// streaming-scan memory win. 0 when the producer doesn't measure.
    pub peak_resident_scan_bytes: usize,
    /// Most chunks simultaneously in flight (spawned to a scatter task but
    /// not yet scattered). Bounded by the producer backpressure at
    /// `2 × pool size`, which is what keeps queued-chunk memory from
    /// re-materializing the input when production outpaces scatter.
    pub peak_inflight_chunks: usize,
    /// Partitions whose compute was dispatched by a **seal** (before the
    /// assemble window closed), as opposed to the end-of-stream drain.
    pub early_dispatches: usize,
}

/// Shared state of one pipelined transform run. Lives in the caller's frame
/// for the duration of the scope; scatter tasks, compute tasks and the
/// producer all hold `&PipeShared`.
struct PipeShared<'a> {
    udf: &'a Arc<dyn TransformUdf>,
    sink: &'a (dyn Fn(usize, Vec<RecordBatch>) -> SqlResult<()> + Sync),
    partitioner: Mutex<StreamingPartitioner>,
    key_columns: Vec<usize>,
    num_partitions: usize,
    /// Whether the partitioner was armed with an expected-rows plan — in
    /// which case *every* partition must seal by itself and an end-of-stream
    /// drain that finds leftovers is a plan violation.
    planned: bool,
    /// First error from any stage; later work short-circuits on it.
    failure: Mutex<Option<SqlError>>,
    /// (start, end) of every compute task, for overlap accounting.
    windows: Mutex<Vec<(Instant, Instant)>>,
    /// Chunks handed to scatter tasks but not yet fully scattered.
    scatter_pending: AtomicUsize,
    /// The producer has emitted its last chunk.
    produced_all: AtomicBool,
    /// When the last chunk finished scattering (closes the assemble window;
    /// doubles as the run-once latch for the end-of-stream drain).
    assemble_end: Mutex<Option<Instant>>,
    early_dispatches: AtomicUsize,
    /// Producer backpressure: chunks spawned to scatter tasks but not yet
    /// scattered, capped at `inflight_cap` (the producer blocks on
    /// `inflight_freed` until a scatter task frees a slot).
    inflight: Mutex<usize>,
    inflight_freed: Condvar,
    inflight_cap: usize,
}

/// The error for a planned pipelined run whose stream ended before every
/// partition sealed — the plan overstated some partition's rows (the
/// understated direction errors in `StreamingPartitioner::absorb`).
fn plan_underdelivery_error() -> SqlError {
    SqlError::Execution(
        "pipelined plan violation: input stream ended before every partition \
         received its expected rows (prescan and scatter disagree)"
            .into(),
    )
}

impl PipeShared<'_> {
    fn fail(&self, e: SqlError) {
        let mut slot = self.failure.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }
}

/// Spawns one compute task per sealed partition — from whatever thread
/// observed the seal, which on the hot path is a pool worker running a
/// scatter task (a continuation spawn onto its own scope).
fn pipe_dispatch<'scope, 'env>(
    shared: &'env PipeShared<'env>,
    scope: &'scope Scope<'scope, 'env>,
    sealed: Vec<(usize, Vec<RecordBatch>)>,
    early: bool,
) {
    for (idx, batches) in sealed {
        if early {
            shared.early_dispatches.fetch_add(1, Ordering::Relaxed);
        }
        scope.spawn(move || {
            if shared.failure.lock().is_some() {
                return; // an earlier stage failed: skip the work
            }
            let start = Instant::now();
            let result = shared.udf.execute(batches).and_then(|out| {
                if shared.failure.lock().is_some() {
                    return Ok(()); // a failure landed while we computed
                }
                (shared.sink)(idx, out)
            });
            let end = Instant::now();
            shared.windows.lock().push((start, end));
            if let Err(e) = result {
                shared.fail(e);
            }
        });
    }
}

/// Closes the assemble window (run-once) and dispatches whatever the seals
/// didn't: the open-ended partitions of a plan-less run. On a *planned* run
/// every partition must have sealed by now — leftovers mean the plan
/// overstated a partition's rows, and silently computing them here would
/// mask the plan bug (and quietly forfeit the pipelining), so it errors
/// instead. Called by whichever of {producer, last scatter task} finishes
/// second.
fn pipe_finish_assemble<'scope, 'env>(
    shared: &'env PipeShared<'env>,
    scope: &'scope Scope<'scope, 'env>,
) {
    let drained = {
        let mut end = shared.assemble_end.lock();
        if end.is_some() {
            return; // both sides raced here; first one already drained
        }
        *end = Some(Instant::now());
        let mut partitioner = shared.partitioner.lock();
        if shared.planned && !partitioner.fully_sealed() {
            // `fail` keeps the first error, so a stream that stopped early
            // because something already failed is not re-flagged.
            shared.fail(plan_underdelivery_error());
            return;
        }
        partitioner.drain_unsealed()
    };
    pipe_dispatch(shared, scope, drained, false);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vertexica_storage::DataType;

    fn db_with_edges() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE edge (src BIGINT NOT NULL, dst BIGINT NOT NULL, weight FLOAT)")
            .unwrap();
        db.execute("INSERT INTO edge VALUES (0,1,1.0), (0,2,2.0), (1,2,3.0), (2,0,4.0), (2,3,5.0)")
            .unwrap();
        db
    }

    #[test]
    fn end_to_end_select() {
        let db = db_with_edges();
        let rows =
            db.query("SELECT src, dst FROM edge WHERE weight > 2.5 ORDER BY weight").unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn group_by_with_having_end_to_end() {
        let db = db_with_edges();
        let rows = db
            .query(
                "SELECT src, COUNT(*) AS cnt, SUM(weight) AS w FROM edge \
                 GROUP BY src HAVING COUNT(*) >= 2 ORDER BY src",
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::Int(0), Value::Int(2), Value::Float(3.0)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Int(2), Value::Float(9.0)]);
    }

    #[test]
    fn join_end_to_end() {
        let db = db_with_edges();
        let n =
            db.query_int("SELECT COUNT(*) FROM edge e1 JOIN edge e2 ON e1.dst = e2.src").unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn two_column_int_join_end_to_end() {
        // Exercises the composite (i64, i64) hash-join fast path: edge
        // identity self-join, plus an inner join against a subset.
        let db = db_with_edges();
        let n = db
            .query_int(
                "SELECT COUNT(*) FROM edge e1 JOIN edge e2 \
                 ON e1.src = e2.src AND e1.dst = e2.dst",
            )
            .unwrap();
        assert_eq!(n, 5, "edge identity self-join matches each edge exactly once");

        db.execute("CREATE TABLE hot AS SELECT src, dst FROM edge WHERE weight >= 4.0").unwrap();
        let rows = db
            .query(
                "SELECT e.src, e.dst, e.weight FROM edge e JOIN hot h \
                 ON e.src = h.src AND e.dst = h.dst ORDER BY e.dst",
            )
            .unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(2), Value::Int(0), Value::Float(4.0)],
                vec![Value::Int(2), Value::Int(3), Value::Float(5.0)],
            ]
        );
        // LEFT JOIN through the same fast path: non-hot edges null-extend.
        let nulls = db
            .query_int(
                "SELECT COUNT(*) FROM edge e LEFT JOIN hot h \
                 ON e.src = h.src AND e.dst = h.dst WHERE h.src IS NULL",
            )
            .unwrap();
        assert_eq!(nulls, 3);
    }

    #[test]
    fn generic_key_join_agrees_with_int_fast_path() {
        // The same equi-join computed over BIGINT keys (fast path) and over
        // the keys cast to FLOAT (generic scratch-buffer path) must agree.
        let db = db_with_edges();
        db.execute(
            "CREATE TABLE fedge AS SELECT CAST(src AS FLOAT) AS fsrc, \
             CAST(dst AS FLOAT) AS fdst, weight FROM edge",
        )
        .unwrap();
        let fast = db
            .query_int(
                "SELECT COUNT(*) FROM edge e1 JOIN edge e2 \
                 ON e1.src = e2.src AND e1.dst = e2.dst",
            )
            .unwrap();
        let generic = db
            .query_int(
                "SELECT COUNT(*) FROM fedge f1 JOIN fedge f2 \
                 ON f1.fsrc = f2.fsrc AND f1.fdst = f2.fdst",
            )
            .unwrap();
        assert_eq!(fast, generic);
        // Duplicate generic keys still fan out (scratch-buffer reuse must
        // not corrupt previously inserted keys).
        let by_weight =
            db.query_int("SELECT COUNT(*) FROM edge e1 JOIN edge e2 ON e1.src = e2.dst").unwrap();
        let by_fweight = db
            .query_int("SELECT COUNT(*) FROM fedge f1 JOIN fedge f2 ON f1.fsrc = f2.fdst")
            .unwrap();
        assert_eq!(by_weight, by_fweight);
    }

    /// End-to-end NULL-key regression: the same join over nullable BIGINT
    /// keys (typed fast path, NULLs skipped per row) and over the keys cast
    /// to FLOAT (generic path) must agree — and NULL must never match NULL,
    /// nor a NULL slot's 0 data sentinel match a real key 0.
    #[test]
    fn nullable_bigint_join_agrees_with_generic_and_skips_nulls() {
        let db = Database::new();
        db.execute("CREATE TABLE a (k BIGINT, v BIGINT NOT NULL)").unwrap();
        db.execute("CREATE TABLE b (k BIGINT, w BIGINT NOT NULL)").unwrap();
        db.execute("INSERT INTO a VALUES (1, 10), (NULL, 20), (0, 30), (2, 40)").unwrap();
        db.execute("INSERT INTO b VALUES (1, 100), (NULL, 200), (0, 300), (0, 400), (3, 500)")
            .unwrap();
        // k=1 matches once, k=0 matches twice; the NULLs match nothing. A
        // fast path without per-row NULL checks would cross-match the NULL
        // rows with the real 0 keys (NULL's data sentinel is 0) → 7 rows.
        let inner = db.query_int("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k").unwrap();
        assert_eq!(inner, 3, "NULL join keys must never match");
        let left = db.query_int("SELECT COUNT(*) FROM a LEFT JOIN b ON a.k = b.k").unwrap();
        assert_eq!(left, 5, "NULL/unmatched probe rows null-extend exactly once");

        // Same joins through the generic path (FLOAT keys).
        db.execute("CREATE TABLE fa AS SELECT CAST(k AS FLOAT) AS k, v FROM a").unwrap();
        db.execute("CREATE TABLE fb AS SELECT CAST(k AS FLOAT) AS k, w FROM b").unwrap();
        let ginner = db.query_int("SELECT COUNT(*) FROM fa JOIN fb ON fa.k = fb.k").unwrap();
        let gleft = db.query_int("SELECT COUNT(*) FROM fa LEFT JOIN fb ON fa.k = fb.k").unwrap();
        assert_eq!((inner, left), (ginner, gleft), "fast path diverged from generic");

        // Composite nullable key: only fully-non-NULL (k, k2) pairs match.
        db.execute("CREATE TABLE c (k BIGINT, k2 BIGINT, x BIGINT NOT NULL)").unwrap();
        db.execute("INSERT INTO c VALUES (0, 0, 1), (0, NULL, 2), (NULL, 0, 3), (1, 2, 4)")
            .unwrap();
        let n = db
            .query_int("SELECT COUNT(*) FROM c c1 JOIN c c2 ON c1.k = c2.k AND c1.k2 = c2.k2")
            .unwrap();
        assert_eq!(n, 2, "composite keys with a NULL component must never match");
    }

    #[test]
    fn stream_hash_join_matches_sql_join() {
        let db = Database::new();
        db.execute("CREATE TABLE p (k BIGINT, v BIGINT NOT NULL)").unwrap();
        db.execute("CREATE TABLE bld (k BIGINT, w BIGINT NOT NULL)").unwrap();
        // Two ROS segments on the probe side, so the cursor actually pulls
        // more than one probe batch through the build.
        let p_schema = db.catalog().get("p").unwrap().read().schema().clone();
        let seg = |rows: &[(Option<i64>, i64)]| {
            let rows: Vec<Vec<Value>> = rows
                .iter()
                .map(|(k, v)| vec![k.map(Value::Int).unwrap_or(Value::Null), Value::Int(*v)])
                .collect();
            RecordBatch::from_rows(p_schema.clone(), &rows).unwrap()
        };
        db.append_batches("p", &[seg(&[(Some(1), 10), (None, 20), (Some(0), 30)])]).unwrap();
        db.append_batches("p", &[seg(&[(Some(2), 40), (Some(3), 50), (Some(0), 60)])]).unwrap();
        db.execute("INSERT INTO bld VALUES (1, 100), (NULL, 200), (0, 300), (3, 400)").unwrap();

        for (outer, sql) in [
            (false, "SELECT p.k, p.v, bld.k, bld.w FROM p JOIN bld ON p.k = bld.k"),
            (true, "SELECT p.k, p.v, bld.k, bld.w FROM p LEFT JOIN bld ON p.k = bld.k"),
        ] {
            let build = db.hash_join_build("bld", None, vec![0]).unwrap();
            let mut streamed: Vec<Vec<Value>> = Vec::new();
            let mut batches_seen = 0usize;
            db.stream_hash_join("p", None, &[0], &build, outer, &mut |batch| {
                batches_seen += 1;
                streamed.extend(batch.rows());
                Ok(())
            })
            .unwrap();
            assert!(batches_seen >= 2, "probe side should stream in several batches");
            let mut expected = db.query(sql).unwrap();
            let canon = |rows: &mut Vec<Vec<Value>>| {
                rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            };
            canon(&mut streamed);
            canon(&mut expected);
            assert_eq!(streamed, expected, "outer={outer}");
        }
    }

    #[test]
    fn open_scan_cursor_does_not_block_writers() {
        let db = db_with_edges();
        // A cursor snapshotted through the engine holds no table lock, so a
        // concurrent writer must make progress while the cursor is open.
        let mut cursor = db.scan_cursor("edge", None, &[]).unwrap();
        let schema = db.catalog().get("edge").unwrap().read().schema().clone();
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = {
            let batch = RecordBatch::from_rows(
                schema,
                &[vec![Value::Int(90), Value::Int(91), Value::Float(9.0)]],
            )
            .unwrap();
            let db = std::sync::Arc::new(db);
            let db2 = db.clone();
            let t = std::thread::spawn(move || {
                let n = db2.append_batches("edge", &[batch]).unwrap();
                tx.send(n).unwrap();
            });
            (db, t)
        };
        let appended = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("append_batches blocked behind an open scan cursor");
        assert_eq!(appended, 1);
        handle.1.join().unwrap();
        // The open cursor still sees exactly its snapshot…
        let mut rows = 0;
        while let Some(b) = cursor.next_batch().unwrap() {
            rows += b.num_rows();
        }
        assert_eq!(rows, 5);
        // …while a fresh scan sees the concurrent append.
        assert_eq!(handle.0.query_int("SELECT COUNT(*) FROM edge").unwrap(), 6);
    }

    #[test]
    fn left_join_is_null_end_to_end() {
        let db = db_with_edges();
        // Dead-end edges: no outgoing edge from dst.
        let rows = db
            .query(
                "SELECT e1.src, e1.dst FROM edge e1 LEFT JOIN edge e2 ON e1.dst = e2.src \
                 WHERE e2.src IS NULL",
            )
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(2), Value::Int(3)]]);
    }

    #[test]
    fn update_and_delete() {
        let db = db_with_edges();
        let r = db.execute("UPDATE edge SET weight = weight * 10 WHERE src = 0").unwrap();
        assert_eq!(r.affected(), 2);
        let w = db.query_scalar("SELECT SUM(weight) FROM edge WHERE src = 0").unwrap();
        assert_eq!(w, Value::Float(30.0));

        let r = db.execute("DELETE FROM edge WHERE src = 2").unwrap();
        assert_eq!(r.affected(), 2);
        assert_eq!(db.query_int("SELECT COUNT(*) FROM edge").unwrap(), 3);
    }

    #[test]
    fn unqualified_delete_truncates() {
        let db = db_with_edges();
        let r = db.execute("DELETE FROM edge").unwrap();
        assert_eq!(r.affected(), 5);
        assert_eq!(db.query_int("SELECT COUNT(*) FROM edge").unwrap(), 0);
    }

    #[test]
    fn ctas_and_insert_select() {
        let db = db_with_edges();
        db.execute("CREATE TABLE hot AS SELECT src, dst FROM edge WHERE weight >= 3.0").unwrap();
        assert_eq!(db.query_int("SELECT COUNT(*) FROM hot").unwrap(), 3);
        db.execute("INSERT INTO hot SELECT src, dst FROM edge WHERE weight < 3.0").unwrap();
        assert_eq!(db.query_int("SELECT COUNT(*) FROM hot").unwrap(), 5);
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let db = db_with_edges();
        db.execute("INSERT INTO edge (src, dst) VALUES (9, 9)").unwrap();
        let rows = db.query("SELECT weight FROM edge WHERE src = 9").unwrap();
        assert_eq!(rows[0][0], Value::Null);
    }

    #[test]
    fn union_all_end_to_end() {
        let db = db_with_edges();
        let n = db
            .query_int(
                "SELECT COUNT(*) FROM (SELECT src FROM edge UNION ALL SELECT dst FROM edge) u",
            )
            .unwrap();
        assert_eq!(n, 10);
    }

    #[test]
    fn cte_end_to_end() {
        let db = db_with_edges();
        let rows = db
            .query(
                "WITH outdeg AS (SELECT src, COUNT(*) AS d FROM edge GROUP BY src) \
                 SELECT src FROM outdeg WHERE d = 2 ORDER BY src",
            )
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(0)], vec![Value::Int(2)]]);
    }

    #[test]
    fn scalar_udf_registration() {
        let db = db_with_edges();
        db.register_scalar(ScalarFunction {
            name: "plus_one",
            return_type: |_| Ok(DataType::Float),
            eval: |args| Ok(Value::Float(args[0].as_float().unwrap_or(0.0) + 1.0)),
        });
        let v = db.query_scalar("SELECT plus_one(weight) FROM edge WHERE src = 1").unwrap();
        assert_eq!(v, Value::Float(4.0));
    }

    #[test]
    fn stored_procedure_roundtrip() {
        let db = db_with_edges();
        db.register_procedure(
            "edge_count",
            Arc::new(|db, _args| {
                let n = db.query_int("SELECT COUNT(*) FROM edge")?;
                Ok(Value::Int(n))
            }),
        );
        assert_eq!(db.call_procedure("edge_count", &[]).unwrap(), Value::Int(5));
        assert!(db.call_procedure("ghost", &[]).is_err());
    }

    #[test]
    fn case_and_functions_end_to_end() {
        let db = db_with_edges();
        let rows = db
            .query(
                "SELECT dst, CASE WHEN weight >= 4.0 THEN 'heavy' ELSE 'light' END AS klass \
                 FROM edge WHERE src = 2 ORDER BY dst",
            )
            .unwrap();
        assert_eq!(rows[0][1], Value::Str("heavy".into()));
        assert_eq!(rows[1][1], Value::Str("heavy".into()));
        let v = db.query_scalar("SELECT SQRT(16.0)").unwrap();
        assert_eq!(v, Value::Float(4.0));
    }

    #[test]
    fn error_on_missing_table() {
        let db = Database::new();
        assert!(db.query("SELECT * FROM ghost").is_err());
    }

    #[test]
    fn drop_table_semantics() {
        let db = db_with_edges();
        db.execute("DROP TABLE IF EXISTS ghost").unwrap();
        assert!(db.execute("DROP TABLE ghost").is_err());
        db.execute("DROP TABLE edge").unwrap();
        assert!(db.query("SELECT * FROM edge").is_err());
    }

    #[test]
    fn distinct_end_to_end() {
        let db = db_with_edges();
        let n = db.query("SELECT DISTINCT src FROM edge").unwrap();
        assert_eq!(n.len(), 3);
    }

    /// Identity transform that tags each output batch with the partition's
    /// first value and records which thread executed it.
    struct Tagger {
        threads: Mutex<std::collections::HashSet<std::thread::ThreadId>>,
        delay: std::time::Duration,
    }

    impl Tagger {
        fn new(delay_ms: u64) -> Arc<Self> {
            Arc::new(Tagger {
                threads: Mutex::new(std::collections::HashSet::new()),
                delay: std::time::Duration::from_millis(delay_ms),
            })
        }
    }

    impl crate::udf::TransformUdf for Tagger {
        fn name(&self) -> &str {
            "tagger"
        }

        fn output_schema(
            &self,
            input: &vertexica_storage::Schema,
        ) -> SqlResult<Arc<vertexica_storage::Schema>> {
            Ok(Arc::new(input.clone()))
        }

        fn execute(&self, partition: Vec<RecordBatch>) -> SqlResult<Vec<RecordBatch>> {
            self.threads.lock().insert(std::thread::current().id());
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            Ok(partition)
        }
    }

    fn int_partition(values: &[i64]) -> Vec<RecordBatch> {
        let schema =
            vertexica_storage::Schema::new(vec![vertexica_storage::Field::new("x", DataType::Int)]);
        let rows: Vec<Vec<Value>> = values.iter().map(|&v| vec![Value::Int(v)]).collect();
        vec![RecordBatch::from_rows(schema, &rows).unwrap()]
    }

    fn first_values(batches: &[RecordBatch]) -> Vec<i64> {
        batches
            .iter()
            .map(|b| match b.column(0).value(0) {
                Value::Int(v) => v,
                other => panic!("expected int, got {other}"),
            })
            .collect()
    }

    #[test]
    fn run_transform_partitions_preserves_partition_order() {
        let db = Database::new();
        db.set_worker_threads(4);
        // Reverse-staggered delays: later partitions finish first unless the
        // engine restores partition order.
        let partitions: Vec<Vec<RecordBatch>> =
            (0..12).map(|i| int_partition(&[i as i64])).collect();
        let udf: Arc<dyn TransformUdf> = Tagger::new(2);
        let out = db.run_transform_partitions(&udf, partitions).unwrap();
        assert_eq!(first_values(&out), (0..12).collect::<Vec<i64>>());
    }

    #[test]
    fn worker_threads_one_is_sequential_and_equivalent() {
        let partitions: Vec<Vec<RecordBatch>> =
            (0..8).map(|i| int_partition(&[i as i64, i as i64 + 100])).collect();

        let db = Database::new();
        db.set_worker_threads(1);
        assert_eq!(db.worker_threads(), 1);
        let seq_udf = Tagger::new(0);
        let seq: Arc<dyn TransformUdf> = seq_udf.clone();
        let out_seq = db.run_transform_partitions(&seq, partitions.clone()).unwrap();
        // Sequential fallback runs inline on the calling thread.
        let seq_threads = seq_udf.threads.lock().clone();
        assert_eq!(seq_threads.len(), 1);
        assert!(seq_threads.contains(&std::thread::current().id()));

        db.set_worker_threads(8);
        let par: Arc<dyn TransformUdf> = Tagger::new(1);
        let out_par = db.run_transform_partitions(&par, partitions).unwrap();
        assert_eq!(first_values(&out_seq), first_values(&out_par));
    }

    #[test]
    fn pool_is_reused_across_transform_invocations() {
        // The crossbeam-scope predecessor spawned fresh threads per call;
        // the shared runtime must execute every superstep on the same small
        // set of persistent workers.
        let db = Database::new();
        db.set_worker_threads(3);
        let udf_impl = Tagger::new(1);
        let udf: Arc<dyn TransformUdf> = udf_impl.clone();
        for _ in 0..5 {
            let partitions: Vec<Vec<RecordBatch>> =
                (0..9).map(|i| int_partition(&[i as i64])).collect();
            db.run_transform_partitions(&udf, partitions).unwrap();
        }
        let distinct = udf_impl.threads.lock().len();
        assert!(
            distinct <= 3,
            "5 invocations × 9 partitions ran on {distinct} distinct threads; \
             a persistent pool of 3 must not spawn per call"
        );
    }

    #[test]
    fn streamed_sink_sees_every_partition_exactly_once() {
        let db = Database::new();
        db.set_worker_threads(4);
        let partitions: Vec<Vec<RecordBatch>> =
            (0..10).map(|i| int_partition(&[i as i64])).collect();
        let udf: Arc<dyn TransformUdf> = Tagger::new(1);
        let seen = Mutex::new(Vec::new());
        db.run_transform_streamed(&udf, partitions, &|idx, out| {
            seen.lock().push((idx, first_values(&out)));
            Ok(())
        })
        .unwrap();
        let mut seen = seen.into_inner();
        seen.sort();
        let expected: Vec<(usize, Vec<i64>)> = (0..10).map(|i| (i, vec![i as i64])).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn streamed_sink_error_propagates() {
        let db = Database::new();
        db.set_worker_threads(4);
        let partitions: Vec<Vec<RecordBatch>> =
            (0..6).map(|i| int_partition(&[i as i64])).collect();
        let udf: Arc<dyn TransformUdf> = Tagger::new(0);
        let err = db
            .run_transform_streamed(&udf, partitions, &|_, _| {
                Err(SqlError::Udf("sink rejects".into()))
            })
            .unwrap_err();
        assert!(err.to_string().contains("sink rejects"));
    }

    /// One single-column int chunk per element of `chunks`.
    fn int_chunks(chunks: &[Vec<i64>]) -> Vec<RecordBatch> {
        chunks.iter().map(|c| int_partition(c).remove(0)).collect()
    }

    /// The expected-rows plan for `chunks` hashed on column 0.
    fn chunk_plan(chunks: &[RecordBatch], parts: usize) -> Vec<u64> {
        let mut plan = vec![0u64; parts];
        for assign in vertexica_storage::partition::partition_assignments(chunks, &[0], parts) {
            for p in assign {
                plan[p] += 1;
            }
        }
        plan
    }

    /// Runs the pipelined path over `chunks` and returns (report, outputs
    /// keyed by partition index, canonicalized).
    #[allow(clippy::type_complexity)]
    fn run_pipelined(
        db: &Database,
        udf: &Arc<dyn TransformUdf>,
        chunks: Vec<RecordBatch>,
        parts: usize,
        plan: Option<Vec<u64>>,
    ) -> SqlResult<(PipelinedReport, Vec<(usize, Vec<i64>)>)> {
        let seen = Mutex::new(Vec::new());
        let report = db.run_transform_pipelined(
            udf,
            vec![0],
            parts,
            plan,
            &mut |sink| {
                for c in chunks.clone() {
                    sink(c)?;
                }
                Ok(0)
            },
            &|idx, out| {
                let mut vals: Vec<i64> =
                    out.iter().flat_map(|b| b.column(0).as_int().unwrap().to_vec()).collect();
                vals.sort_unstable();
                seen.lock().push((idx, vals));
                Ok(())
            },
        )?;
        let mut seen = seen.into_inner();
        seen.sort();
        Ok((report, seen))
    }

    #[test]
    fn pipelined_run_matches_materialized_partitioning() {
        // The pipelined dataflow must deliver, per partition, exactly the
        // rows the one-shot hash partitioning assigns it — at every pool
        // size including the sequential fallback, with and without a plan.
        let chunks = int_chunks(&[
            (0..40).collect::<Vec<i64>>(),
            (40..55).collect(),
            vec![],
            (55..97).collect(),
        ]);
        let parts = 6;
        let reference: Vec<(usize, Vec<i64>)> = {
            let parted = hash_partition(&chunks, &[0], parts).unwrap();
            parted
                .iter()
                .enumerate()
                .filter(|(_, bs)| bs.iter().any(|b| b.num_rows() > 0))
                .map(|(i, bs)| {
                    let mut vals: Vec<i64> =
                        bs.iter().flat_map(|b| b.column(0).as_int().unwrap().to_vec()).collect();
                    vals.sort_unstable();
                    (i, vals)
                })
                .collect()
        };
        for workers in [1usize, 4] {
            for planned in [true, false] {
                let db = Database::new();
                db.set_worker_threads(workers);
                let udf: Arc<dyn TransformUdf> = Tagger::new(0);
                let plan = planned.then(|| chunk_plan(&chunks, parts));
                let (report, seen) = run_pipelined(&db, &udf, chunks.clone(), parts, plan).unwrap();
                assert_eq!(seen, reference, "workers={workers} planned={planned}");
                assert!(report.input_bytes > 0);
                assert!(report.peak_chunk_bytes <= report.input_bytes);
            }
        }
    }

    #[test]
    fn pipelined_plan_dispatches_before_assemble_finishes() {
        // Each chunk holds keys of a single partition, and the producer
        // sleeps between chunks: with a plan, partition p's compute must
        // launch while later chunks are still being produced.
        let parts = 4;
        let mut per_part: Vec<Vec<i64>> = vec![Vec::new(); parts];
        let mut k = 0i64;
        while per_part.iter().any(|v| v.len() < 8) {
            per_part[vertexica_storage::partition::int_key_partition(k, parts)].push(k);
            k += 1;
        }
        let chunks = int_chunks(&per_part);
        let plan = chunk_plan(&chunks, parts);

        let db = Database::new();
        db.set_worker_threads(4);
        let udf: Arc<dyn TransformUdf> = Tagger::new(5);
        let seen = Mutex::new(0usize);
        let report = db
            .run_transform_pipelined(
                &udf,
                vec![0],
                parts,
                Some(plan),
                &mut |sink| {
                    for c in chunks.clone() {
                        sink(c)?;
                        // Keep the assemble window open while sealed
                        // partitions compute.
                        std::thread::sleep(std::time::Duration::from_millis(15));
                    }
                    Ok(0)
                },
                &|_, _| {
                    *seen.lock() += 1;
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(*seen.lock(), parts);
        assert!(
            report.early_dispatches >= parts - 1,
            "single-partition chunks must seal on arrival: {report:?}"
        );
        assert!(
            report.overlap_secs > 0.0,
            "compute should have run inside the assemble window: {report:?}"
        );
    }

    #[test]
    fn pipelined_report_carries_producer_resident_gauge() {
        // Whatever peak-resident-source-bytes gauge the producer returns
        // must surface verbatim on the report, at every pool size.
        let chunks = int_chunks(&[(0..16).collect::<Vec<i64>>()]);
        for workers in [1usize, 4] {
            let db = Database::new();
            db.set_worker_threads(workers);
            let udf: Arc<dyn TransformUdf> = Tagger::new(0);
            let report = db
                .run_transform_pipelined(
                    &udf,
                    vec![0],
                    2,
                    None,
                    &mut |sink| {
                        for c in chunks.clone() {
                            sink(c)?;
                        }
                        Ok(7777)
                    },
                    &|_, _| Ok(()),
                )
                .unwrap();
            assert_eq!(report.peak_resident_scan_bytes, 7777, "workers={workers}");
        }
    }

    #[test]
    fn pipelined_without_plan_dispatches_only_at_drain() {
        let chunks = int_chunks(&[(0..64).collect::<Vec<i64>>()]);
        let db = Database::new();
        db.set_worker_threads(4);
        let udf: Arc<dyn TransformUdf> = Tagger::new(0);
        let (report, seen) = run_pipelined(&db, &udf, chunks, 4, None).unwrap();
        assert_eq!(seen.len(), 4);
        assert_eq!(report.early_dispatches, 0, "open-ended sources never seal early");
    }

    #[test]
    fn pipelined_udf_and_sink_errors_propagate() {
        struct Failing;
        impl crate::udf::TransformUdf for Failing {
            fn name(&self) -> &str {
                "failing"
            }
            fn output_schema(
                &self,
                input: &vertexica_storage::Schema,
            ) -> SqlResult<Arc<vertexica_storage::Schema>> {
                Ok(Arc::new(input.clone()))
            }
            fn execute(&self, _p: Vec<RecordBatch>) -> SqlResult<Vec<RecordBatch>> {
                Err(SqlError::Udf("pipelined udf failure".into()))
            }
        }
        let chunks = int_chunks(&[(0..32).collect::<Vec<i64>>()]);
        for workers in [1usize, 4] {
            let db = Database::new();
            db.set_worker_threads(workers);
            let udf: Arc<dyn TransformUdf> = Arc::new(Failing);
            let err = run_pipelined(&db, &udf, chunks.clone(), 4, None).unwrap_err();
            assert!(err.to_string().contains("pipelined udf failure"), "workers={workers}");

            let ok: Arc<dyn TransformUdf> = Tagger::new(0);
            let err = db
                .run_transform_pipelined(
                    &ok,
                    vec![0],
                    4,
                    None,
                    &mut |sink| {
                        for c in chunks.clone() {
                            sink(c)?;
                        }
                        Ok(0)
                    },
                    &|_, _| Err(SqlError::Udf("pipelined sink failure".into())),
                )
                .unwrap_err();
            assert!(err.to_string().contains("pipelined sink failure"), "workers={workers}");
        }
    }

    #[test]
    fn pipelined_mismatched_plan_is_an_error() {
        // A plan that understates a partition's rows means a compute task
        // could have started on truncated input — loud failure required.
        let chunks = int_chunks(&[(0..64).collect::<Vec<i64>>()]);
        let parts = 4;
        let mut plan = chunk_plan(&chunks, parts);
        let victim = plan.iter().position(|&n| n > 1).unwrap();
        plan[victim] -= 1;
        let db = Database::new();
        db.set_worker_threads(4);
        let udf: Arc<dyn TransformUdf> = Tagger::new(0);
        assert!(run_pipelined(&db, &udf, chunks, parts, Some(plan)).is_err());
    }

    #[test]
    fn pipelined_overstated_plan_is_an_error() {
        // The other direction: a plan promising rows that never arrive
        // would leave the partition to the end-of-stream drain — silently
        // masking the plan bug and forfeiting the pipelining — so the run
        // must fail loudly instead, at every pool size.
        let chunks = int_chunks(&[(0..64).collect::<Vec<i64>>()]);
        let parts = 4;
        let mut plan = chunk_plan(&chunks, parts);
        plan[0] += 1;
        for workers in [1usize, 4] {
            let db = Database::new();
            db.set_worker_threads(workers);
            let udf: Arc<dyn TransformUdf> = Tagger::new(0);
            let err =
                run_pipelined(&db, &udf, chunks.clone(), parts, Some(plan.clone())).unwrap_err();
            assert!(
                err.to_string().contains("plan violation"),
                "workers={workers}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn pipelined_producer_is_backpressured() {
        // A producer that can emit chunks much faster than busy workers
        // scatter them must be throttled: in-flight chunks stay bounded by
        // 2 × pool size, so queued chunks can never re-materialize the
        // input. Slow compute keeps both workers busy while the producer
        // races ahead.
        let many: Vec<Vec<i64>> = (0..48).map(|c| vec![c, c + 100, c + 200]).collect();
        let chunks = int_chunks(&many);
        let db = Database::new();
        db.set_worker_threads(2);
        let udf: Arc<dyn TransformUdf> = Tagger::new(2);
        let (report, seen) = run_pipelined(&db, &udf, chunks, 4, None).unwrap();
        assert_eq!(seen.iter().map(|(_, v)| v.len()).sum::<usize>(), 48 * 3);
        assert!(report.peak_inflight_chunks >= 1);
        assert!(
            report.peak_inflight_chunks <= 4,
            "producer outran the backpressure cap: {report:?}"
        );
    }

    #[test]
    fn skewed_partition_map_triggers_work_stealing() {
        // One giant slow partition plus many light ones, on a pool smaller
        // than the partition count: with per-worker deques the light
        // partitions pile up behind the slow worker's deque and must be
        // stolen by its idle siblings.
        let db = Database::new();
        db.set_worker_threads(2);
        let before = db.runtime().metrics();
        let mut partitions: Vec<Vec<RecordBatch>> =
            vec![int_partition(&(0..512).collect::<Vec<_>>())];
        partitions.extend((1..16).map(|i| int_partition(&[i as i64])));

        struct SlowFirst {
            inner: Arc<Tagger>,
        }
        impl crate::udf::TransformUdf for SlowFirst {
            fn name(&self) -> &str {
                "slow_first"
            }
            fn output_schema(
                &self,
                input: &vertexica_storage::Schema,
            ) -> SqlResult<Arc<vertexica_storage::Schema>> {
                self.inner.output_schema(input)
            }
            fn execute(&self, p: Vec<RecordBatch>) -> SqlResult<Vec<RecordBatch>> {
                if p[0].num_rows() > 1 {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                self.inner.execute(p)
            }
        }
        let slow: Arc<dyn TransformUdf> = Arc::new(SlowFirst { inner: Tagger::new(0) });
        let out = db.run_transform_partitions(&slow, partitions).unwrap();
        assert_eq!(out.len(), 16);
        let delta = db.runtime().metrics().delta_since(&before);
        assert_eq!(delta.tasks_executed, 16);
        assert!(delta.tasks_stolen > 0, "skewed partitions should force steals: {delta:?}");
    }

    #[test]
    fn transform_errors_propagate_without_panicking() {
        struct Failing;
        impl crate::udf::TransformUdf for Failing {
            fn name(&self) -> &str {
                "failing"
            }
            fn output_schema(
                &self,
                input: &vertexica_storage::Schema,
            ) -> SqlResult<Arc<vertexica_storage::Schema>> {
                Ok(Arc::new(input.clone()))
            }
            fn execute(&self, _p: Vec<RecordBatch>) -> SqlResult<Vec<RecordBatch>> {
                Err(SqlError::Udf("deliberate failure".into()))
            }
        }
        let db = Database::new();
        db.set_worker_threads(4);
        let udf: Arc<dyn TransformUdf> = Arc::new(Failing);
        let partitions: Vec<Vec<RecordBatch>> =
            (0..6).map(|i| int_partition(&[i as i64])).collect();
        let err = db.run_transform_partitions(&udf, partitions).unwrap_err();
        assert!(err.to_string().contains("deliberate failure"));
    }

    #[test]
    fn transform_panic_propagates_to_caller() {
        struct Panicking;
        impl crate::udf::TransformUdf for Panicking {
            fn name(&self) -> &str {
                "panicking"
            }
            fn output_schema(
                &self,
                input: &vertexica_storage::Schema,
            ) -> SqlResult<Arc<vertexica_storage::Schema>> {
                Ok(Arc::new(input.clone()))
            }
            fn execute(&self, _p: Vec<RecordBatch>) -> SqlResult<Vec<RecordBatch>> {
                panic!("udf panic escapes the pool");
            }
        }
        let db = Database::new();
        db.set_worker_threads(4);
        let udf: Arc<dyn TransformUdf> = Arc::new(Panicking);
        let partitions: Vec<Vec<RecordBatch>> =
            (0..4).map(|i| int_partition(&[i as i64])).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            db.run_transform_partitions(&udf, partitions)
        }));
        assert!(result.is_err(), "worker panic must reach the submitting thread");
        // The database (and its pool) stays usable afterwards.
        let ok: Arc<dyn TransformUdf> = Tagger::new(0);
        let out = db.run_transform_partitions(&ok, vec![int_partition(&[7])]).unwrap();
        assert_eq!(first_values(&out), vec![7]);
    }

    #[test]
    fn replace_table_segmented_rebuilds_contents() {
        let db = db_with_edges();
        db.set_worker_threads(4);
        // Three segment batches, one of them empty.
        let schema = db.catalog().get("edge").unwrap().read().schema().clone();
        let seg1 = RecordBatch::from_rows(
            schema.clone(),
            &[vec![Value::Int(10), Value::Int(11), Value::Float(1.0)]],
        )
        .unwrap();
        let seg2 = RecordBatch::empty(schema.clone());
        let seg3 = RecordBatch::from_rows(
            schema.clone(),
            &[
                vec![Value::Int(20), Value::Int(21), Value::Float(2.0)],
                vec![Value::Int(30), Value::Int(31), Value::Float(3.0)],
            ],
        )
        .unwrap();
        let handle = db.catalog().get("edge").unwrap();
        let n = db.replace_table_segmented("edge", vec![seg1, seg2, seg3]).unwrap();
        assert_eq!(n, 3);
        // Old rows are gone, the handle observes the replacement, and the
        // non-empty batches became one segment each.
        assert_eq!(db.query_int("SELECT COUNT(*) FROM edge").unwrap(), 3);
        assert_eq!(db.query_int("SELECT COUNT(*) FROM edge WHERE src < 10").unwrap(), 0);
        assert_eq!(handle.read().num_segments(), 2);
    }

    #[test]
    fn replace_table_segmented_carries_block_zone_maps() {
        use vertexica_storage::BLOCK_ROWS;
        let db = Database::new();
        db.execute("CREATE TABLE t (k BIGINT NOT NULL, v BIGINT)").unwrap();
        let schema = db.catalog().get("t").unwrap().read().schema().clone();
        let n = BLOCK_ROWS * 3;
        let rows: Vec<Vec<Value>> =
            (0..n).map(|i| vec![Value::Int(i as i64), Value::Int((i % 7) as i64)]).collect();
        let batch = RecordBatch::from_rows(schema, &rows).unwrap();
        assert_eq!(db.replace_table_segmented("t", vec![batch]).unwrap(), n);

        // The segment-parallel commit path must produce the same per-block
        // zone maps a bulk load would: k is sorted, so block b spans exactly
        // [b * BLOCK_ROWS, (b + 1) * BLOCK_ROWS).
        let handle = db.catalog().get("t").unwrap();
        {
            let guard = handle.read();
            let seg = guard.segments()[0].read().unwrap();
            assert_eq!(seg.num_blocks(), 3);
            for b in 0..seg.num_blocks() {
                let (start, len) = seg.block_range(b);
                let zm = seg.block_zone_map(0, b);
                assert_eq!(zm.min, Value::Int(start as i64));
                assert_eq!(zm.max, Value::Int((start + len - 1) as i64));
                assert_eq!(zm.null_count, 0);
            }
        }

        // A pushed-down point predicate then prunes the two non-matching
        // blocks inside the surviving segment.
        let before = handle.read().blocks_pruned();
        let probe = (BLOCK_ROWS + 5) as i64;
        let got = db.query_int(&format!("SELECT v FROM t WHERE k = {probe}")).unwrap();
        assert_eq!(got, probe % 7);
        let after = handle.read().blocks_pruned();
        assert_eq!(after - before, 2, "two of the three blocks should be zone-map-pruned");
    }

    #[test]
    fn replace_table_segmented_aborts_cleanly_on_bad_batch() {
        let db = db_with_edges();
        let bad_schema = vertexica_storage::Schema::new(vec![vertexica_storage::Field::new(
            "only",
            DataType::Int,
        )]);
        let bad = RecordBatch::from_rows(bad_schema, &[vec![Value::Int(1)]]).unwrap();
        assert!(db.replace_table_segmented("edge", vec![bad]).is_err());
        // Nothing committed: original contents intact.
        assert_eq!(db.query_int("SELECT COUNT(*) FROM edge").unwrap(), 5);
        assert!(db.replace_table_segmented("ghost", vec![]).is_err());
    }

    #[test]
    fn order_by_aggregate_in_select() {
        let db = db_with_edges();
        let rows = db
            .query("SELECT src, COUNT(*) FROM edge GROUP BY src ORDER BY COUNT(*) DESC, src")
            .unwrap();
        assert_eq!(rows[0][0], Value::Int(0));
        assert_eq!(rows[2][0], Value::Int(1));
    }
}
