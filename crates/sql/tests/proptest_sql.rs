//! Property-based tests for the SQL engine: vectorized vs scalar expression
//! evaluation, SQL query results vs straight-line Rust reference filters,
//! aggregate identities.

use proptest::prelude::*;
use vertexica_sql::ast::{BinaryOp, UnaryOp};
use vertexica_sql::expr::{set_vectorized_expr, PhysExpr};
use vertexica_sql::Database;
use vertexica_storage::{DataType, Field, RecordBatch, Schema, Value};

fn db_with_numbers(values: &[(i64, f64)]) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE nums (k BIGINT NOT NULL, x FLOAT)").unwrap();
    for chunk in values.chunks(256) {
        let rows: Vec<String> = chunk.iter().map(|(k, x)| format!("({k}, {x:?})")).collect();
        db.execute(&format!("INSERT INTO nums VALUES {}", rows.join(","))).unwrap();
    }
    db
}

/// Decodes a byte stream into a random expression tree over columns
/// #0 (Int), #1 (Float), #2 (Str) — a stack machine, so no recursive
/// strategy is needed. Every byte either pushes a leaf or combines what is
/// already on the stack, covering arithmetic, comparisons, three-valued
/// AND/OR, NOT/Neg, IS NULL, IN lists and CASE, with zero and NULL literals
/// mixed in to hit division-by-zero and null-propagation paths.
fn build_expr(bytes: &[u8]) -> PhysExpr {
    const BIN_OPS: [BinaryOp; 13] = [
        BinaryOp::Plus,
        BinaryOp::Minus,
        BinaryOp::Multiply,
        BinaryOp::Divide,
        BinaryOp::Modulo,
        BinaryOp::Eq,
        BinaryOp::NotEq,
        BinaryOp::Lt,
        BinaryOp::LtEq,
        BinaryOp::Gt,
        BinaryOp::GtEq,
        BinaryOp::And,
        BinaryOp::Or,
    ];
    let mut stack = vec![PhysExpr::col(0), PhysExpr::col(1), PhysExpr::col(2)];
    for &b in bytes {
        let pick = b % 12;
        let salt = (b / 12) as usize;
        let e = match pick {
            0 => PhysExpr::col(salt % 3),
            1 => PhysExpr::lit((salt as i64) - 10),
            2 => PhysExpr::lit(((salt as f64) - 10.0) / 4.0),
            3 => PhysExpr::Literal(Value::Null),
            4 => PhysExpr::lit(salt.is_multiple_of(2)),
            5 => PhysExpr::lit(["", "a", "bb", "family"][salt % 4]),
            6 | 7 => {
                let right = stack.pop().expect("seeded stack");
                let left = stack.pop().unwrap_or(PhysExpr::col(salt % 3));
                PhysExpr::Binary {
                    left: Box::new(left),
                    op: BIN_OPS[salt % BIN_OPS.len()],
                    right: Box::new(right),
                }
            }
            8 => PhysExpr::Unary {
                op: if salt.is_multiple_of(2) { UnaryOp::Not } else { UnaryOp::Neg },
                expr: Box::new(stack.pop().expect("seeded stack")),
            },
            9 => PhysExpr::IsNull {
                expr: Box::new(stack.pop().expect("seeded stack")),
                negated: salt.is_multiple_of(2),
            },
            10 => PhysExpr::InList {
                expr: Box::new(stack.pop().expect("seeded stack")),
                list: vec![
                    PhysExpr::lit((salt as i64) - 5),
                    PhysExpr::Literal(Value::Null),
                    PhysExpr::col(salt % 3),
                ],
                negated: salt % 2 == 1,
            },
            _ => {
                let otherwise = stack.pop().expect("seeded stack");
                let then = stack.pop().unwrap_or(PhysExpr::lit((salt as i64) - 3));
                let when = stack.pop().unwrap_or(PhysExpr::Binary {
                    left: Box::new(PhysExpr::col(0)),
                    op: BinaryOp::Gt,
                    right: Box::new(PhysExpr::lit(0i64)),
                });
                PhysExpr::Case {
                    when_then: vec![(when, then)],
                    else_expr: Some(Box::new(otherwise)),
                }
            }
        };
        stack.push(e);
    }
    stack.pop().expect("seeded stack")
}

fn arb_cell_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The typed slice kernels and the `Value`-per-row loop are bitwise
    /// interchangeable: same Ok/Err outcome, and on Ok the same dtype,
    /// values, and validity placement — over random expression trees and
    /// random batches with nulls, zeros, and empty inputs.
    #[test]
    fn vectorized_expr_matches_row_path(
        bytes in arb_cell_bytes(),
        rows in proptest::collection::vec(
            (
                prop_oneof![1 => Just(Value::Null), 4 => (-6i64..6).prop_map(Value::Int)],
                prop_oneof![
                    1 => Just(Value::Null),
                    1 => Just(Value::Float(0.0)),
                    3 => (-8.0f64..8.0).prop_map(Value::Float)
                ],
                prop_oneof![1 => Just(Value::Null), 3 => "[ab]{0,3}".prop_map(Value::Str)],
            ),
            0..50,
        ),
    ) {
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("f", DataType::Float),
            Field::new("s", DataType::Str),
        ]);
        let rows: Vec<Vec<Value>> = rows.into_iter().map(|(a, b, c)| vec![a, b, c]).collect();
        let batch = RecordBatch::from_rows(schema, &rows).unwrap();
        let expr = build_expr(&bytes);

        set_vectorized_expr(true);
        let fast = expr.eval(&batch);
        set_vectorized_expr(false);
        let slow = expr.eval(&batch);
        set_vectorized_expr(true);

        match (fast, slow) {
            (Ok(fast), Ok(slow)) => {
                prop_assert_eq!(fast.dtype(), slow.dtype(), "dtype of {:?}", &expr);
                prop_assert_eq!(fast.len(), slow.len());
                for i in 0..fast.len() {
                    prop_assert_eq!(
                        fast.value(i),
                        slow.value(i),
                        "row {} of {:?}", i, &expr
                    );
                }
                prop_assert_eq!(fast.validity(), slow.validity(), "validity of {:?}", &expr);
            }
            (Err(_), Err(_)) => {} // both paths reject the same trees
            (fast, slow) => prop_assert!(
                false,
                "paths disagree on {:?}: vectorized {:?}, row {:?}",
                &expr,
                fast.map(|c| c.len()),
                slow.map(|c| c.len())
            ),
        }
    }

    /// WHERE filters agree with a straight Rust filter.
    #[test]
    fn where_matches_reference(
        values in proptest::collection::vec((-50i64..50, -10.0f64..10.0), 1..150),
        lo in -50i64..50,
    ) {
        let db = db_with_numbers(&values);
        let got = db
            .query_int(&format!("SELECT COUNT(*) FROM nums WHERE k > {lo} AND x >= 0.0"))
            .unwrap();
        let expected = values.iter().filter(|(k, x)| *k > lo && *x >= 0.0).count() as i64;
        prop_assert_eq!(got, expected);
    }

    /// SUM/COUNT/AVG identities: AVG == SUM / COUNT (non-null, non-empty).
    #[test]
    fn aggregate_identities(
        values in proptest::collection::vec((-50i64..50, -10.0f64..10.0), 1..150),
    ) {
        let db = db_with_numbers(&values);
        let rows = db
            .query("SELECT SUM(x), COUNT(x), AVG(x) FROM nums")
            .unwrap();
        let sum = rows[0][0].as_float().unwrap();
        let count = rows[0][1].as_int().unwrap();
        let avg = rows[0][2].as_float().unwrap();
        prop_assert_eq!(count as usize, values.len());
        prop_assert!((avg - sum / count as f64).abs() < 1e-9);
        let expected_sum: f64 = values.iter().map(|(_, x)| x).sum();
        prop_assert!((sum - expected_sum).abs() < 1e-6);
    }

    /// GROUP BY partitions the table: group counts sum to the row count,
    /// and every group key is distinct.
    #[test]
    fn group_by_partitions(
        values in proptest::collection::vec((-10i64..10, 0.0f64..1.0), 1..150),
    ) {
        let db = db_with_numbers(&values);
        let rows = db.query("SELECT k, COUNT(*) FROM nums GROUP BY k").unwrap();
        let total: i64 = rows.iter().map(|r| r[1].as_int().unwrap()).sum();
        prop_assert_eq!(total as usize, values.len());
        let keys: std::collections::HashSet<i64> =
            rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        prop_assert_eq!(keys.len(), rows.len());
    }

    /// ORDER BY actually sorts, and LIMIT truncates.
    #[test]
    fn order_and_limit(
        values in proptest::collection::vec((-1000i64..1000, 0.0f64..1.0), 1..150),
        limit in 1u64..20,
    ) {
        let db = db_with_numbers(&values);
        let rows = db
            .query(&format!("SELECT k FROM nums ORDER BY k LIMIT {limit}"))
            .unwrap();
        prop_assert_eq!(rows.len(), (limit as usize).min(values.len()));
        let mut sorted: Vec<i64> = values.iter().map(|(k, _)| *k).collect();
        sorted.sort_unstable();
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(row[0].as_int().unwrap(), sorted[i]);
        }
    }

    /// Constant expressions evaluate identically through the vectorized path
    /// (SELECT over a table) and the scalar path (SELECT without FROM).
    #[test]
    fn scalar_and_vectorized_agree(a in -1000i64..1000, b in 1i64..1000) {
        let db = db_with_numbers(&[(1, 1.0)]);
        let exprs = [
            format!("{a} + {b}"),
            format!("{a} - {b}"),
            format!("{a} * {b}"),
            format!("{a} / {b}"),
            format!("{a} % {b}"),
            format!("ABS({a})"),
            format!("LEAST({a}, {b})"),
            format!("CASE WHEN {a} > {b} THEN {a} ELSE {b} END"),
        ];
        for e in &exprs {
            let scalar = db.query_scalar(&format!("SELECT {e}")).unwrap();
            let vector = db.query_scalar(&format!("SELECT {e} FROM nums")).unwrap();
            prop_assert_eq!(scalar, vector, "expression {}", e);
        }
    }

    /// UPDATE touches exactly the rows the predicate selects; DELETE removes
    /// them; the rest stay intact.
    #[test]
    fn dml_row_accounting(
        values in proptest::collection::vec((-20i64..20, 0.0f64..1.0), 1..100),
        pivot in -20i64..20,
    ) {
        let db = db_with_numbers(&values);
        let expected: i64 = values.iter().filter(|(k, _)| *k < pivot).count() as i64;
        let updated = db
            .execute(&format!("UPDATE nums SET x = 99.0 WHERE k < {pivot}"))
            .unwrap()
            .affected() as i64;
        prop_assert_eq!(updated, expected);
        let marked = db.query_int("SELECT COUNT(*) FROM nums WHERE x = 99.0").unwrap();
        prop_assert!(marked >= expected); // pre-existing 99.0 x-values possible? range < 1.0, so equal
        prop_assert_eq!(marked, expected);
        let deleted = db
            .execute(&format!("DELETE FROM nums WHERE k < {pivot}"))
            .unwrap()
            .affected() as i64;
        prop_assert_eq!(deleted, expected);
        let left = db.query_int("SELECT COUNT(*) FROM nums").unwrap();
        prop_assert_eq!(left as usize, values.len() - expected as usize);
    }

    /// UNION ALL concatenates: counts add up.
    #[test]
    fn union_all_counts(
        values in proptest::collection::vec((-20i64..20, 0.0f64..1.0), 1..80),
    ) {
        let db = db_with_numbers(&values);
        let n = db
            .query_int(
                "SELECT COUNT(*) FROM (SELECT k FROM nums UNION ALL SELECT k FROM nums) u",
            )
            .unwrap();
        prop_assert_eq!(n as usize, values.len() * 2);
    }

    /// Self-join on key equality yields the sum of squared group sizes.
    #[test]
    fn join_cardinality(
        keys in proptest::collection::vec(-8i64..8, 1..60),
    ) {
        let values: Vec<(i64, f64)> = keys.iter().map(|&k| (k, 0.0)).collect();
        let db = db_with_numbers(&values);
        let got = db
            .query_int("SELECT COUNT(*) FROM nums a JOIN nums b ON a.k = b.k")
            .unwrap();
        let mut freq = std::collections::HashMap::new();
        for k in &keys {
            *freq.entry(k).or_insert(0i64) += 1;
        }
        let expected: i64 = freq.values().map(|c| c * c).sum();
        prop_assert_eq!(got, expected);
    }
}
