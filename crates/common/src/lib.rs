//! Shared graph model and Pregel-style API for the Vertexica reproduction.
//!
//! This crate holds everything that must be visible to more than one engine:
//!
//! * the graph model ([`VertexId`], [`Edge`], [`EdgeList`], [`Adjacency`]),
//! * the vertex-centric programming API ([`VertexProgram`], [`VertexContext`]),
//!   which is shared by the relational Vertexica engine, the Giraph-like BSP
//!   baseline and the reference implementations so that the *same* user program
//!   can be executed and compared across engines — exactly the comparison the
//!   paper's Figure 2 performs,
//! * value codecs ([`VertexData`]) used to store vertex/message values in
//!   relational `VARBINARY` columns and in serialized BSP message buffers,
//! * small utilities: an FxHash-style fast hasher for integer-keyed maps and a
//!   deterministic `splitmix64` generator,
//! * the [`sync`] seam — the single point every crate goes through for locks,
//!   condvars, atomics and fences — and the bounded-interleaving [`model`]
//!   checker that instruments it under `--cfg vertexica_model`.

#![warn(missing_docs)]

pub mod codec;
pub mod graph;
pub mod hash;
pub mod pregel;
pub mod runtime;
pub mod sync;
pub mod timer;

pub use codec::VertexData;
pub use graph::{Adjacency, Edge, EdgeList, VertexId};
pub use hash::{FxHashMap, FxHashSet};
pub use pregel::{AggKind, AggregatorSpec, InitContext, VertexContext, VertexProgram};
pub use runtime::WorkerPool;
pub use sync::model;
