//! Shared parallel runtime: a persistent, size-configurable worker pool with
//! per-worker deques, work stealing, and scoped task submission.
//!
//! Vertexica's paper workload is superstep-structured: every superstep fans
//! out one worker-UDF invocation per vertex partition and joins at a barrier
//! (§2.2). The seed implementation spawned a fresh `crossbeam::thread::scope`
//! per superstep inside the SQL layer, paying thread start-up cost on the
//! hottest path and leaving the SQL engine and the coordinator with no shared
//! notion of parallelism. [`WorkerPool`] replaces that: threads are spawned
//! once, owned by the `Database`, reused across supersteps, resized on
//! demand, and shared by every layer (SQL transform execution, the
//! coordinator's superstep loop, and the BSP baseline engine).
//!
//! Design notes:
//!
//! * **Per-worker deques + stealing.** Each worker owns a deque; submissions
//!   are distributed round-robin over the live workers. A worker pops from
//!   the *front* of its own deque (FIFO, preserving rough submission order)
//!   and, when empty, steals from the *back* of a sibling's deque. Skewed
//!   partitions therefore no longer serialize behind a single shared queue:
//!   a worker stuck in one long partition keeps its backlog stealable.
//! * **Observability.** The pool keeps monotonic counters — tasks executed,
//!   tasks obtained by stealing, and cumulative queue wait (submission →
//!   execution start). Snapshot them with [`WorkerPool::metrics`]; the
//!   coordinator turns deltas into per-superstep [`PoolMetrics`].
//! * **Per-worker parking.** An idle worker parks on its *own* slot's
//!   mutex + condvar behind a wake-token handshake; a submitter tokens
//!   exactly one sleeping slot (preferring the deque that just received the
//!   job). The shared `idle` lock serializes only resizes and worker exits,
//!   so sleep/wake on a large, mostly-idle pool no longer contends on one
//!   pool-wide condvar.
//! * **Scoped submission.** [`WorkerPool::scope`] allows tasks to borrow from
//!   the caller's stack, like `std::thread::scope`, but runs them on the
//!   persistent pool. The scope does not return until every task submitted
//!   in it has finished, which is what makes the lifetime erasure sound.
//! * **Panic propagation.** A panicking task does not take down the worker
//!   thread; the first panic payload is captured and re-thrown from
//!   `scope()` on the submitting thread.
//! * **Sequential fallback.** A pool of size 1 (or a single-item
//!   [`WorkerPool::map_indexed`]) executes inline on the calling thread, so
//!   `worker_threads = 1` is genuinely sequential and nested use cannot
//!   deadlock.
//! * **Nestable scopes.** Tasks may submit follow-up work. Two shapes are
//!   supported. *Continuation spawns*: a running task can call
//!   [`Scope::spawn`] on the scope that spawned it (the scope handle is
//!   `Sync` and tasks are bounded by `'scope`, exactly like
//!   `std::thread::scope`), so dynamically discovered work — e.g. a
//!   partition sealing mid-assemble — is dispatched without a second
//!   barrier. *Nested scopes*: calling [`WorkerPool::scope`] from inside a
//!   pool task is also supported; while the nested scope waits, the blocked
//!   worker **helps** — it keeps draining its own deque and stealing from
//!   siblings — so nested tasks can never deadlock behind their own scope,
//!   even on a pool of one. Nested-scope entries are counted in
//!   [`PoolMetrics::nested_scopes`].

use crate::sync::{AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex, Ordering, RwLock};
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Which pool worker (pool identity + worker index) the current thread
    /// is, if any. Set for the lifetime of a worker thread; lets `scope`
    /// detect that it is being entered from inside a pool task and switch
    /// its barrier wait to the helping loop.
    static WORKER_CONTEXT: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Clears [`WORKER_CONTEXT`] when a worker thread exits (pool shrink or
/// shutdown), including on unwind.
struct WorkerContextReset;

impl Drop for WorkerContextReset {
    fn drop(&mut self) {
        WORKER_CONTEXT.with(|ctx| ctx.set(None));
    }
}

/// A job plus its submission timestamp, for queue-wait accounting.
struct TimedJob {
    job: Job,
    enqueued: Instant,
}

/// One worker's deque plus its private parking lot. Slots are created on
/// demand and never removed, so a shrunken-away worker's leftover jobs
/// remain visible to stealers.
struct WorkerSlot {
    deque: Mutex<VecDeque<TimedJob>>,
    /// Deque length mirror, updated inside the deque lock. Lets pop/steal
    /// scans skip empty slots without touching their mutexes.
    len: AtomicUsize,
    /// Whether a live worker thread currently services this slot. Flipped
    /// only under the pool's `idle` mutex, which makes grow-after-shrink
    /// races impossible (no duplicate workers per slot, no missed spawns).
    occupied: AtomicBool,
    /// Per-worker parking: a wake token under this slot's own mutex, with a
    /// condvar only this slot's worker waits on. Submitters token exactly
    /// one sleeping slot instead of signalling a pool-wide condvar, so a
    /// large, mostly-idle pool no longer funnels every sleep/wake through
    /// one shared lock.
    park: Mutex<bool>,
    unpark: Condvar,
    /// Whether this slot's worker is parked (or committing to park). Read
    /// lock-free by submitters scanning for a worker to wake.
    sleeping: AtomicBool,
}

impl WorkerSlot {
    fn new() -> Self {
        WorkerSlot {
            deque: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
            occupied: AtomicBool::new(false),
            park: Mutex::new(false),
            unpark: Condvar::new(),
            sleeping: AtomicBool::new(false),
        }
    }

    /// Deposits a wake token and signals the slot's worker. Tokens are
    /// idempotent: a spurious token just makes the worker rescan once.
    fn wake(&self) {
        let mut token = self.park.lock();
        *token = true;
        self.unpark.notify_one();
    }
}

/// Monotonic execution counters for a [`WorkerPool`].
///
/// All fields only ever grow over the life of the pool (the inline
/// sequential fallback bypasses the queue and is intentionally not counted).
/// Use [`PoolMetrics::delta_since`] to scope them to a phase, e.g. one
/// superstep.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PoolMetrics {
    /// Tasks that ran on a pool worker (excludes inline fallback runs).
    pub tasks_executed: u64,
    /// Tasks a worker obtained by stealing from a sibling's deque.
    pub tasks_stolen: u64,
    /// Cumulative seconds tasks spent queued before starting to execute.
    pub queue_wait_secs: f64,
    /// Scopes entered **from inside a pool task** (nesting depth ≥ 1). While
    /// such a scope waits, the blocked worker helps drain the pool instead
    /// of parking, so nested submission never deadlocks behind its own
    /// scope.
    pub nested_scopes: u64,
}

impl PoolMetrics {
    /// The counter increments between `earlier` and `self`.
    pub fn delta_since(&self, earlier: &PoolMetrics) -> PoolMetrics {
        PoolMetrics {
            tasks_executed: self.tasks_executed.saturating_sub(earlier.tasks_executed),
            tasks_stolen: self.tasks_stolen.saturating_sub(earlier.tasks_stolen),
            queue_wait_secs: (self.queue_wait_secs - earlier.queue_wait_secs).max(0.0),
            nested_scopes: self.nested_scopes.saturating_sub(earlier.nested_scopes),
        }
    }
}

struct PoolShared {
    /// Worker deques, indexed by worker id. Grows monotonically; `target`
    /// decides how many are live.
    slots: RwLock<Vec<Arc<WorkerSlot>>>,
    /// Desired number of workers; the source of truth for pool size.
    target: AtomicUsize,
    /// Jobs currently sitting in any deque (not yet picked up).
    queued: AtomicUsize,
    /// Workers currently parked (or committing to park) on their per-slot
    /// condvars. Lets `submit` skip the wake scan entirely when every worker
    /// is busy — the common case on a loaded pool.
    sleepers: AtomicUsize,
    /// Round-robin submission cursor.
    next: AtomicUsize,
    /// The lock under which worker-exit decisions and resizes are
    /// serialized. **Not** part of the parking hot path: workers park on
    /// their own slot's mutex/condvar and only touch this lock when exiting.
    idle: Mutex<()>,
    // ---- monotonic counters ----
    executed: AtomicU64,
    steals: AtomicU64,
    queue_wait_nanos: AtomicU64,
    nested_scopes: AtomicU64,
}

impl PoolShared {
    /// Pushes a job onto a live worker's deque (round-robin) and wakes one
    /// parked worker, preferring the deque's owner.
    fn submit(&self, job: Job) {
        let timed = TimedJob { job, enqueued: Instant::now() };
        let target = {
            let slots = self.slots.read();
            let live = self.target.load(Ordering::SeqCst).clamp(1, slots.len());
            let i = self.next.fetch_add(1, Ordering::Relaxed) % live;
            let mut deque = slots[i].deque.lock();
            deque.push_back(timed);
            slots[i].len.store(deque.len(), Ordering::SeqCst);
            // Incremented inside the deque lock: a worker popping this job
            // can never observe (and underflow) a not-yet-incremented count.
            self.queued.fetch_add(1, Ordering::SeqCst);
            i
        };
        // Workers set their slot's `sleeping` flag (and bump `sleepers`)
        // *before* re-checking `queued`, so reading 0 here means every
        // worker either runs or will observe the increment above — no lost
        // wakeups, and a busy pool pays nothing beyond this load.
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            self.wake_one(target);
        }
    }

    /// Tokens exactly one sleeping worker, starting the scan at `preferred`
    /// (the slot that just received a job). Any woken worker rescans every
    /// deque — its own, then stealing — so waking "the wrong" sleeper is
    /// still correct.
    ///
    /// The `sleeping` flag is re-checked **under the slot's park lock**
    /// before the token is deposited: workers clear the flag under that same
    /// lock when they unpark or commit to exiting (pool shrink), so a token
    /// can never land on a slot whose worker has already left — which would
    /// strand the queued job if every other worker were parked. Finding no
    /// committed sleeper is safe: any worker parking after this submission's
    /// `queued` increment re-checks the queue under its lock and bails out.
    fn wake_one(&self, preferred: usize) {
        let slots = self.slots.read();
        let n = slots.len();
        for off in 0..n {
            let slot = &slots[(preferred + off) % n];
            if !slot.sleeping.load(Ordering::SeqCst) {
                continue;
            }
            let mut token = slot.park.lock();
            if !slot.sleeping.load(Ordering::SeqCst) {
                continue; // unparked or exited between the peek and the lock
            }
            *token = true;
            slot.unpark.notify_one();
            return;
        }
    }

    /// Tokens every slot (resize, shutdown).
    fn wake_all(&self) {
        let slots = self.slots.read();
        for slot in slots.iter() {
            slot.wake();
        }
    }

    /// Pops from the front of `slot`'s own deque, skipping the lock when the
    /// slot is empty.
    fn pop_own(&self, slot: &WorkerSlot) -> Option<TimedJob> {
        if slot.len.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let mut deque = slot.deque.lock();
        let tj = deque.pop_front();
        if tj.is_some() {
            slot.len.store(deque.len(), Ordering::SeqCst);
            self.queued.fetch_sub(1, Ordering::SeqCst);
        }
        tj
    }

    /// Attempts to steal a job from any slot other than `me`, scanning from
    /// the back of each sibling deque (empty slots are skipped lock-free).
    fn try_steal(&self, me: usize) -> Option<TimedJob> {
        let slots = self.slots.read();
        let n = slots.len();
        for off in 1..n {
            let j = (me + off) % n;
            if slots[j].len.load(Ordering::SeqCst) == 0 {
                continue;
            }
            let mut deque = slots[j].deque.lock();
            if let Some(tj) = deque.pop_back() {
                slots[j].len.store(deque.len(), Ordering::SeqCst);
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(tj);
            }
        }
        None
    }

    /// Runs one dequeued job, updating counters.
    fn run(&self, timed: TimedJob, stolen: bool) {
        let waited = timed.enqueued.elapsed();
        self.queue_wait_nanos.fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
        self.executed.fetch_add(1, Ordering::Relaxed);
        if stolen {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
        (timed.job)();
    }
}

fn worker_loop(shared: Arc<PoolShared>, me: usize) {
    let my_slot = shared.slots.read()[me].clone();
    // Identify this thread as pool worker `me` so scopes entered from
    // inside a task switch to the helping wait (see `ScopeState::wait_all`).
    WORKER_CONTEXT.with(|ctx| ctx.set(Some((Arc::as_ptr(&shared) as usize, me))));
    let _reset = WorkerContextReset;
    loop {
        // 1. Own deque, front first (FIFO within a worker).
        if let Some(tj) = shared.pop_own(&my_slot) {
            shared.run(tj, false);
            continue;
        }
        // 2. Steal from a sibling's back.
        if let Some(tj) = shared.try_steal(me) {
            shared.run(tj, true);
            continue;
        }
        // 3. Nothing runnable: exit if shrunk away, otherwise park on this
        // worker's own condvar (no shared lock on the sleep/wake path).
        let mut token = my_slot.park.lock();
        // Register as a sleeper *before* re-checking `queued`: a submitter
        // that misses these stores is ordered before them, so the re-check
        // below observes its queued job (no lost wakeups); a submitter that
        // sees them will deposit a wake token.
        my_slot.sleeping.store(true, Ordering::SeqCst);
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        let unregister = |token: &mut bool| {
            *token = false;
            my_slot.sleeping.store(false, Ordering::SeqCst);
            shared.sleepers.fetch_sub(1, Ordering::SeqCst);
        };
        // This re-check is the lost-wakeup guard; the model checker proves
        // it load-bearing by seeding `runtime.skip_park_recheck`.
        let rescan = shared.queued.load(Ordering::SeqCst) > 0 || *token;
        if rescan && !crate::sync::model::mutation_enabled("runtime.skip_park_recheck") {
            // Work arrived between the scan and the park commit, or a stale
            // token was left behind: consume it and rescan.
            unregister(&mut token);
            continue;
        }
        if shared.target.load(Ordering::SeqCst) <= me {
            unregister(&mut token);
            drop(token);
            // The exit decision is re-taken under the idle lock, mirroring
            // `resize`'s spawn decision — the two can never disagree.
            let _guard = shared.idle.lock();
            if shared.target.load(Ordering::SeqCst) <= me {
                my_slot.occupied.store(false, Ordering::SeqCst);
                return;
            }
            continue; // a concurrent grow kept this worker alive
        }
        while !*token {
            token = my_slot.unpark.wait(token);
        }
        unregister(&mut token);
    }
}

/// A persistent pool of worker threads with per-worker deques, work
/// stealing, and scoped task submission.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("size", &self.size()).finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `size` workers (clamped to at least 1).
    pub fn new(size: usize) -> Self {
        let pool = WorkerPool {
            shared: Arc::new(PoolShared {
                slots: RwLock::new(Vec::new()),
                target: AtomicUsize::new(0),
                queued: AtomicUsize::new(0),
                sleepers: AtomicUsize::new(0),
                next: AtomicUsize::new(0),
                idle: Mutex::new(()),
                executed: AtomicU64::new(0),
                steals: AtomicU64::new(0),
                queue_wait_nanos: AtomicU64::new(0),
                nested_scopes: AtomicU64::new(0),
            }),
            handles: Mutex::new(Vec::new()),
        };
        pool.resize(size);
        pool
    }

    /// A pool sized to the machine's core count.
    pub fn with_default_size() -> Self {
        Self::new(default_parallelism())
    }

    /// The configured number of workers.
    pub fn size(&self) -> usize {
        self.shared.target.load(Ordering::SeqCst)
    }

    /// A snapshot of the pool's monotonic execution counters.
    pub fn metrics(&self) -> PoolMetrics {
        PoolMetrics {
            tasks_executed: self.shared.executed.load(Ordering::Relaxed),
            tasks_stolen: self.shared.steals.load(Ordering::Relaxed),
            queue_wait_secs: self.shared.queue_wait_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            nested_scopes: self.shared.nested_scopes.load(Ordering::Relaxed),
        }
    }

    /// Grows or shrinks the pool to `size` workers (clamped to at least 1).
    /// Pending tasks are never dropped: a shrunken-away worker keeps helping
    /// (stealing included) until it finds the pool momentarily drained, and
    /// any jobs left in its deque stay stealable by the surviving workers.
    pub fn resize(&self, size: usize) {
        let size = size.max(1);
        // The idle lock serializes this against worker exit decisions.
        let idle_guard = self.shared.idle.lock();
        let mut handles = self.handles.lock();
        handles.retain(|h| !h.is_finished());
        self.shared.target.store(size, Ordering::SeqCst);
        {
            let mut slots = self.shared.slots.write();
            while slots.len() < size {
                slots.push(Arc::new(WorkerSlot::new()));
            }
        }
        let slots = self.shared.slots.read();
        for (i, slot) in slots.iter().enumerate().take(size) {
            if !slot.occupied.swap(true, Ordering::SeqCst) {
                let shared = self.shared.clone();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("vertexica-worker-{i}"))
                        .spawn(move || worker_loop(shared, i))
                        .expect("spawn pool worker"),
                );
            }
        }
        drop(slots);
        drop(handles);
        // Wake every worker so shrunken-away ones observe the new target.
        self.shared.wake_all();
        drop(idle_guard);
    }

    /// Runs `f` with a [`Scope`] through which tasks borrowing from the
    /// enclosing environment can be submitted to the pool. Returns only after
    /// every submitted task has completed — including tasks spawned *by*
    /// tasks (continuation spawns, see [`Scope::spawn`]). If any task
    /// panicked, the first panic is re-thrown here.
    ///
    /// `scope` may itself be called from inside a pool task (a **nested
    /// scope**). The nested barrier then does not park the worker: while its
    /// tasks are outstanding the worker keeps executing queued pool jobs —
    /// its own deque first, then stealing — so nested tasks cannot deadlock
    /// behind the scope that submitted them, even on a single-worker pool.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        // A nested scope is one entered from a worker *of this pool*; a
        // worker of some other pool can block normally (its pool still has
        // threads to make progress with).
        let helper = WORKER_CONTEXT
            .with(|ctx| ctx.get())
            .and_then(|(pool, me)| (pool == Arc::as_ptr(&self.shared) as usize).then_some(me));
        if helper.is_some() {
            self.shared.nested_scopes.fetch_add(1, Ordering::Relaxed);
        }
        let state = Arc::new(ScopeState {
            pending: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let scope = Scope { pool: self, state: state.clone(), _scope: std::marker::PhantomData };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // The barrier below is what makes `spawn`'s lifetime erasure sound:
        // no borrow handed to a task outlives this function's frame.
        match helper {
            Some(me) => state.wait_all_helping(&self.shared, me),
            None => state.wait_all(),
        }
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = state.panic.lock().take() {
                    resume_unwind(payload);
                }
                value
            }
        }
    }

    /// Applies `f` to every item on the pool, returning results **in input
    /// order**. Single-item or single-worker calls run inline on the calling
    /// thread (sequential fallback).
    pub fn map_indexed<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if items.len() <= 1 || self.size() <= 1 {
            return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let n = items.len();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        self.scope(|scope| {
            for (i, item) in items.into_iter().enumerate() {
                let f = &f;
                let slots = &slots;
                scope.spawn(move || {
                    *slots[i].lock() = Some(f(i, item));
                });
            }
        });
        slots.into_iter().map(|slot| slot.into_inner().expect("pool task completed")).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let _guard = self.shared.idle.lock();
            self.shared.target.store(0, Ordering::SeqCst);
        }
        self.shared.wake_all();
        let mut handles = self.handles.lock();
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
    }
}

struct ScopeState {
    pending: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn task_started(&self) {
        *self.pending.lock() += 1;
    }

    fn task_finished(&self) {
        let mut pending = self.pending.lock();
        *pending -= 1;
        if *pending == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait_all(&self) {
        let mut pending = self.pending.lock();
        while *pending > 0 {
            pending = self.all_done.wait(pending);
        }
    }

    /// The nested-scope barrier: called when the scope was entered from pool
    /// worker `me`. Instead of parking (which could leave this scope's own
    /// tasks stranded in this very worker's deque), the worker keeps
    /// draining the pool — own deque front first, then stealing — until the
    /// scope's task count hits zero. When nothing is runnable but tasks are
    /// still in flight on other workers, it naps briefly on the scope
    /// condvar; the timeout bounds the latency of picking up *new* jobs
    /// spawned by those in-flight tasks (a completion signal wakes it
    /// immediately).
    fn wait_all_helping(&self, shared: &PoolShared, me: usize) {
        let my_slot = shared.slots.read().get(me).cloned();
        loop {
            if *self.pending.lock() == 0 {
                return;
            }
            if let Some(slot) = my_slot.as_deref() {
                if let Some(tj) = shared.pop_own(slot) {
                    shared.run(tj, false);
                    continue;
                }
            }
            if let Some(tj) = shared.try_steal(me) {
                shared.run(tj, true);
                continue;
            }
            let pending = self.pending.lock();
            if *pending == 0 {
                return;
            }
            // Outstanding tasks are running elsewhere; nap until one
            // finishes or the timeout says "rescan the deques".
            let _ = self.all_done.wait_timeout(pending, Duration::from_micros(200));
        }
    }
}

/// Handle for submitting borrowing tasks to the pool within a
/// [`WorkerPool::scope`] call.
///
/// Mirrors `std::thread::Scope`: the handle is `Sync` and tasks are bounded
/// by `'scope`, so a running task can capture `&Scope` and spawn follow-up
/// work onto its own scope (the barrier counts dynamically spawned tasks
/// too — a task always registers its continuations before finishing, so the
/// scope can never observe a premature zero).
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope WorkerPool,
    state: Arc<ScopeState>,
    /// Invariant over `'scope` and `'env`, like `std::thread::Scope`.
    _scope: std::marker::PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Submits a task that may borrow from the environment enclosing the
    /// scope — or from the scope itself (`F: 'scope`, so a task can capture
    /// `&Scope` and spawn continuations). The task runs on a pool worker;
    /// panics are captured and re-thrown from the enclosing `scope()` call.
    pub fn spawn<F>(&'scope self, task: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.task_started();
        let state = self.state.clone();
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(task));
            if let Err(payload) = result {
                let mut slot = state.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            state.task_finished();
        });
        // SAFETY: `scope()` blocks until `pending` reaches zero before
        // returning (even when the scope body panics), and every spawn —
        // including one from inside a running task — increments `pending`
        // before the spawning task's own decrement, so every borrow captured
        // by `job` (environment or scope-local) is live until after the job
        // completes. The transmute only erases the `'scope` lifetime to
        // `'static`.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        self.pool.shared.submit(job);
    }
}

/// The machine's available parallelism, with a sane fallback.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// A lock-free single-consumer mailbox: the cross-shard message channel of
/// the sharded engine. One `Outbox` exists per (source shard, destination
/// shard) pair; the source's assemble loop pushes remote-owned row batches
/// as it scatters chunks, and the destination drains between its own chunks
/// — so inter-shard rows flow *while both sides are still streaming*, with
/// no barrier on the data path.
///
/// The data path is lock-free: `push` is a Treiber-stack CAS, `try_drain`
/// a single `swap`. Batches come back in reverse push order (LIFO), which
/// is fine for every use in this codebase — the vertex worker canonically
/// sorts its whole input, so arrival order never reaches the output.
/// Consumer registration uses a `OnceLock` set once before the stream
/// starts; producers `unpark` the registered consumer after each push so a
/// parked `drain_wait` wakes promptly (and a `park_timeout` backstop covers
/// the unregistered window).
pub struct Outbox<T> {
    head: crate::sync::AtomicPtr<OutboxNode<T>>,
    closed: AtomicBool,
    consumer: std::sync::OnceLock<std::thread::Thread>,
    // `Mutex<T>` phantom: `Sync` exactly when `T: Send` (the consumer takes
    // ownership of items; nothing is ever shared by reference).
    _marker: std::marker::PhantomData<Mutex<T>>,
}

struct OutboxNode<T> {
    item: T,
    next: *mut OutboxNode<T>,
}

impl<T> Default for Outbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Outbox<T> {
    /// An empty, open outbox with no registered consumer.
    pub fn new() -> Self {
        Self {
            head: crate::sync::AtomicPtr::new(std::ptr::null_mut()),
            closed: AtomicBool::new(false),
            consumer: std::sync::OnceLock::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Registers the calling thread as the consumer; subsequent pushes and
    /// the close will `unpark` it. First registration wins (single-consumer).
    pub fn register_consumer(&self) {
        let _ = self.consumer.set(std::thread::current());
        // A push may have raced ahead of registration and skipped the wake;
        // self-unpark so the first `drain_wait` never waits a full timeout
        // on an already-populated mailbox.
        std::thread::current().unpark();
    }

    fn wake_consumer(&self) {
        if let Some(t) = self.consumer.get() {
            t.unpark();
        }
    }

    /// Pushes one item (lock-free). Callers must not push after [`close`](Self::close)
    /// (checked in debug builds).
    pub fn push(&self, item: T) {
        debug_assert!(!self.closed.load(Ordering::Acquire), "push into a closed Outbox");
        let node = Box::into_raw(Box::new(OutboxNode { item, next: std::ptr::null_mut() }));
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: `node` is exclusively ours until the CAS publishes it.
            unsafe { (*node).next = head };
            match self.head.compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => break,
                Err(current) => head = current,
            }
        }
        self.wake_consumer();
    }

    /// Marks the stream complete: after every pushed item is drained,
    /// `drain_wait` returns `None`.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.wake_consumer();
    }

    /// Whether the producer has marked the stream complete. Read this
    /// *before* a final [`try_drain`](Self::try_drain): close happens-after
    /// the last push, so `closed` + one more drain observes every item.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Takes everything currently queued without blocking (possibly empty).
    /// Items arrive in reverse push order.
    pub fn try_drain(&self) -> Vec<T> {
        let mut node = self.head.swap(std::ptr::null_mut(), Ordering::AcqRel);
        let mut out = Vec::new();
        while !node.is_null() {
            // SAFETY: the swap took exclusive ownership of the whole chain.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
            out.push(boxed.item);
        }
        out
    }

    /// Blocks until at least one item is available (returning the whole
    /// current batch) or the outbox is closed *and* empty (returning
    /// `None`). Producers push-then-close, so observing `closed` and then
    /// draining empty means the stream is truly finished.
    pub fn drain_wait(&self) -> Option<Vec<T>> {
        loop {
            let items = self.try_drain();
            if !items.is_empty() {
                return Some(items);
            }
            if self.closed.load(Ordering::Acquire) {
                // Re-drain after observing the close: a final push
                // happens-before the close in the producer. Skipping this
                // re-drain tears the seal (a push racing the close is lost);
                // the model checker proves that by seeding
                // `runtime.outbox_skip_final_drain`.
                if crate::sync::model::mutation_enabled("runtime.outbox_skip_final_drain") {
                    return None;
                }
                let items = self.try_drain();
                return if items.is_empty() { None } else { Some(items) };
            }
            outbox_backstop();
        }
    }
}

/// The consumer's no-progress backstop in [`Outbox::drain_wait`]: a short
/// real-time park in production (producers `unpark` on every push), but a
/// model schedule point under the checker, so logical consumer threads
/// hand control to producers instead of sleeping wall-clock time.
fn outbox_backstop() {
    if crate::sync::model::in_model() {
        crate::sync::model::yield_now();
    } else {
        std::thread::park_timeout(Duration::from_millis(1));
    }
}

impl<T> Drop for Outbox<T> {
    fn drop(&mut self) {
        // Free anything never drained.
        for item in self.try_drain() {
            drop(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread::ThreadId;

    #[test]
    fn executes_all_tasks() {
        let pool = WorkerPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn tasks_borrow_from_stack() {
        let pool = WorkerPool::new(2);
        let data = vec![1u64, 2, 3, 4];
        let sums: Vec<Mutex<u64>> = (0..4).map(|_| Mutex::new(0)).collect();
        pool.scope(|s| {
            for (i, slot) in sums.iter().enumerate() {
                let data = &data;
                s.spawn(move || {
                    *slot.lock() = data[i] * 10;
                });
            }
        });
        let total: u64 = sums.iter().map(|m| *m.lock()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn pool_threads_are_reused_across_scopes() {
        // The defining property of the refactor: consecutive supersteps
        // (scopes) run on the same persistent threads, not fresh spawns.
        let pool = WorkerPool::new(3);
        let observe = |pool: &WorkerPool| -> HashSet<ThreadId> {
            let ids = Mutex::new(HashSet::new());
            pool.scope(|s| {
                for _ in 0..32 {
                    let ids = &ids;
                    s.spawn(move || {
                        ids.lock().insert(std::thread::current().id());
                        // Brief yield so multiple workers participate.
                        std::thread::yield_now();
                    });
                }
            });
            ids.into_inner()
        };
        let first = observe(&pool);
        let second = observe(&pool);
        assert!(!first.is_empty());
        assert!(
            second.is_subset(&first),
            "scope 2 ran on threads outside the persistent pool: {second:?} vs {first:?}"
        );
    }

    #[test]
    fn panic_in_task_propagates_to_scope_caller() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom from worker"));
                s.spawn(|| { /* healthy sibling task */ });
            });
        }));
        let payload = result.expect_err("scope should rethrow the task panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_else(|| payload.downcast_ref::<String>().unwrap().as_str());
        assert!(msg.contains("boom from worker"));
        // The pool survives the panic and keeps executing.
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn map_indexed_preserves_input_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..64).rev().collect();
        let out = pool.map_indexed(items.clone(), |_, x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn size_one_pool_runs_inline_and_sequential() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.size(), 1);
        let caller = std::thread::current().id();
        let out = pool.map_indexed(vec![1, 2, 3], |i, x| {
            assert_eq!(std::thread::current().id(), caller, "sequential fallback must run inline");
            i + x
        });
        assert_eq!(out, vec![1, 3, 5]);
    }

    #[test]
    fn resize_grows_and_shrinks() {
        let pool = WorkerPool::new(1);
        pool.resize(4);
        assert_eq!(pool.size(), 4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        pool.resize(0); // clamps to 1
        assert_eq!(pool.size(), 1);
        pool.scope(|s| {
            s.spawn(|| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 17);
    }

    #[test]
    fn repeated_resize_cycles_stay_healthy() {
        // Exercises the grow-after-shrink path: slots are reused, never
        // double-occupied, and the pool keeps executing correctly.
        let pool = WorkerPool::new(4);
        let counter = AtomicU64::new(0);
        for round in 0..6 {
            pool.resize(if round % 2 == 0 { 1 } else { 5 });
            pool.scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 48);
    }

    #[test]
    fn scope_body_panic_still_joins_tasks() {
        let pool = WorkerPool::new(2);
        let finished = Arc::new(AtomicU64::new(0));
        let finished2 = finished.clone();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let finished = finished2.clone();
                s.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    finished.fetch_add(1, Ordering::SeqCst);
                });
                panic!("scope body panic");
            });
        }));
        assert!(result.is_err());
        // The spawned task must have completed before scope unwound.
        assert_eq!(finished.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn skewed_load_triggers_work_stealing() {
        // Round-robin puts half the tasks in each of two deques. Worker 0's
        // first task blocks it for a while; worker 1 drains its own deque in
        // microseconds and must steal worker 0's backlog to finish the scope.
        let pool = WorkerPool::new(2);
        let before = pool.metrics();
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for i in 0..16 {
                let counter = &counter;
                s.spawn(move || {
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(60));
                    }
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        let delta = pool.metrics().delta_since(&before);
        assert_eq!(delta.tasks_executed, 16);
        assert!(delta.tasks_stolen > 0, "expected steals under skewed load, metrics: {delta:?}");
    }

    #[test]
    fn metrics_are_monotonic() {
        let pool = WorkerPool::new(3);
        let mut prev = pool.metrics();
        for _ in 0..4 {
            pool.scope(|s| {
                for _ in 0..12 {
                    s.spawn(|| {
                        std::thread::yield_now();
                    });
                }
            });
            let now = pool.metrics();
            assert!(now.tasks_executed >= prev.tasks_executed);
            assert!(now.tasks_stolen >= prev.tasks_stolen);
            assert!(now.queue_wait_secs >= prev.queue_wait_secs);
            prev = now;
        }
        assert_eq!(prev.tasks_executed, 48);
    }

    #[test]
    fn queue_wait_drops_with_pool_size() {
        // Regression guard for the per-worker parking backoff: a fixed load
        // of short tasks must observe *much* less cumulative queue wait on a
        // big pool than on a tiny one. Under the old single shared condvar,
        // wakeup contention at larger pool sizes ate into exactly this
        // margin.
        let load = |size: usize| -> f64 {
            let pool = WorkerPool::new(size);
            let before = pool.metrics();
            pool.scope(|s| {
                for _ in 0..48 {
                    s.spawn(|| {
                        std::thread::sleep(std::time::Duration::from_millis(3));
                    });
                }
            });
            let delta = pool.metrics().delta_since(&before);
            assert_eq!(delta.tasks_executed, 48);
            delta.queue_wait_secs
        };
        let small = load(2);
        let large = load(8);
        // The expected ratio is ~0.25 (4× the workers draining the same
        // queue), but both sides are wall-clock measurements: keep a wide
        // margin so scheduler noise on loaded CI runners can't flake this.
        assert!(
            large < small,
            "pool=8 should cut cumulative queue wait below pool=2: {large:.4}s vs {small:.4}s"
        );
    }

    #[test]
    fn shrink_then_submit_never_strands_a_job() {
        // Regression guard for a lost-wakeup window: a submission racing a
        // pool shrink must not deposit its single wake token on a worker
        // that is committing to exit (leaving the job queued while every
        // surviving worker stays parked). `wake_one` re-checks the sleeping
        // flag under the slot's park lock to close this; the loop below
        // hangs (scope never returns) if it regresses.
        let pool = WorkerPool::new(8);
        let counter = AtomicU64::new(0);
        for round in 0..40 {
            pool.resize(8);
            pool.resize(1);
            if round % 4 == 0 {
                // Give shrunken-away workers time to reach their exit path.
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            pool.scope(|s| {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn parked_workers_wake_for_late_submissions() {
        // Workers park on their own slots once the pool drains; later
        // submissions must still be picked up (no lost wakeups) even after
        // repeated park/unpark cycles.
        let pool = WorkerPool::new(4);
        let counter = AtomicU64::new(0);
        for round in 0..10 {
            if round % 2 == 0 {
                // Give the workers time to actually park.
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            pool.scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn tasks_spawn_continuations_onto_their_own_scope() {
        // A running task discovers more work and submits it to the same
        // scope (the pipelined dispatch pattern: a scatter task seals a
        // partition and spawns its compute task). The barrier must count
        // the continuations.
        let pool = WorkerPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    // Two generations of continuations, spawned from workers.
                    s.spawn(move || {
                        counter.fetch_add(10, Ordering::SeqCst);
                        s.spawn(move || {
                            counter.fetch_add(100, Ordering::SeqCst);
                        });
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8 * 111);
    }

    #[test]
    fn continuation_panic_still_propagates() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(move || {
                    s.spawn(|| panic!("continuation boom"));
                });
            });
        }));
        let payload = result.expect_err("scope should rethrow the continuation panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_else(|| payload.downcast_ref::<String>().unwrap().as_str());
        assert!(msg.contains("continuation boom"));
    }

    #[test]
    fn nested_scope_from_worker_completes() {
        // A pool task opens its own scope. The blocked worker must help run
        // the nested tasks rather than queueing behind its own scope.
        let pool = WorkerPool::new(3);
        let before = pool.metrics();
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                let pool = &pool;
                let total = &total;
                s.spawn(move || {
                    let inner = AtomicU64::new(0);
                    pool.scope(|nested| {
                        for _ in 0..8 {
                            let inner = &inner;
                            nested.spawn(move || {
                                inner.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                    total.fetch_add(inner.load(Ordering::SeqCst), Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 32);
        let delta = pool.metrics().delta_since(&before);
        assert_eq!(delta.nested_scopes, 4, "each task's scope counts as nested: {delta:?}");
        assert_eq!(delta.tasks_executed, 4 + 32);
    }

    #[test]
    fn nested_scope_on_single_worker_pool_cannot_deadlock() {
        // The regression the helping wait exists for: on a pool of one, a
        // task's nested scope submits into the only deque — the deque the
        // nesting task itself is blocking. Helping runs them inline.
        let pool = WorkerPool::new(1);
        let observed = AtomicU64::new(0);
        pool.scope(|s| {
            let pool = &pool;
            let observed = &observed;
            s.spawn(move || {
                pool.scope(|nested| {
                    for _ in 0..5 {
                        nested.spawn(move || {
                            observed.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
                // And map_indexed (built on scope) must nest too.
                let out = pool.map_indexed(vec![1u64, 2, 3], |_, x| x * 2);
                observed.fetch_add(out.iter().sum::<u64>(), Ordering::SeqCst);
            });
        });
        assert_eq!(observed.load(Ordering::SeqCst), 5 + 12);
    }

    #[test]
    fn nested_scope_metrics_are_monotonic() {
        let pool = WorkerPool::new(2);
        let mut prev = pool.metrics();
        assert_eq!(prev.nested_scopes, 0);
        for round in 0..3 {
            pool.scope(|s| {
                let pool = &pool;
                s.spawn(move || {
                    pool.scope(|nested| {
                        nested.spawn(std::thread::yield_now);
                    });
                });
            });
            let now = pool.metrics();
            assert!(now.nested_scopes > prev.nested_scopes, "round {round}: {now:?}");
            assert!(now.tasks_executed >= prev.tasks_executed);
            prev = now;
        }
        // Top-level scopes never count as nested.
        pool.scope(|s| s.spawn(|| {}));
        assert_eq!(pool.metrics().nested_scopes, prev.nested_scopes);
    }

    #[test]
    fn queue_wait_is_recorded() {
        // A pool of 2 fed 2 slow tasks + several queued ones: the queued
        // tasks must observe non-zero wait.
        let pool = WorkerPool::new(2);
        let before = pool.metrics();
        pool.scope(|s| {
            for _ in 0..6 {
                s.spawn(|| {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                });
            }
        });
        let delta = pool.metrics().delta_since(&before);
        assert_eq!(delta.tasks_executed, 6);
        assert!(delta.queue_wait_secs > 0.0, "queued tasks should have waited: {delta:?}");
    }

    #[test]
    fn outbox_delivers_everything_once() {
        let outbox = Outbox::new();
        for i in 0..5 {
            outbox.push(i);
        }
        let mut got = outbox.try_drain();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(outbox.try_drain().is_empty());
    }

    #[test]
    fn outbox_drain_wait_sees_stream_end() {
        let outbox = Arc::new(Outbox::new());
        let producer = {
            let outbox = outbox.clone();
            std::thread::spawn(move || {
                for i in 0..1000u64 {
                    outbox.push(i);
                    if i % 97 == 0 {
                        std::thread::yield_now();
                    }
                }
                outbox.close();
            })
        };
        outbox.register_consumer();
        let mut got = Vec::new();
        while let Some(batch) = outbox.drain_wait() {
            got.extend(batch);
        }
        producer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got.len(), 1000);
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
        assert!(outbox.is_closed());
        // After end-of-stream, further waits return immediately.
        assert!(outbox.drain_wait().is_none());
    }

    #[test]
    fn outbox_close_wakes_blocked_consumer() {
        let outbox = Arc::new(Outbox::<u64>::new());
        let consumer = {
            let outbox = outbox.clone();
            std::thread::spawn(move || {
                outbox.register_consumer();
                outbox.drain_wait()
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        outbox.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn outbox_drop_frees_undrained_items() {
        // Mostly a miri/asan courtesy: leak-free teardown of a non-empty box.
        let outbox = Outbox::new();
        outbox.push(String::from("left behind"));
        outbox.push(String::from("also left"));
        drop(outbox);
    }
}

/// Bounded model checks of the runtime's two concurrency protocols — the
/// [`Outbox`] produce/drain/seal handshake and the [`WorkerPool`]
/// park/wake/steal/exit protocol — plus mutation proofs that the
/// load-bearing re-checks are actually load-bearing. Compiled only under
/// `RUSTFLAGS='--cfg vertexica_model'`; run with
/// `cargo test -p vertexica-common model_`.
#[cfg(all(test, vertexica_model))]
mod model_tests {
    use super::*;
    use crate::sync::model::{self, Config, ViolationKind};

    // ---- Outbox produce / drain / seal ----

    /// One producer pushes two batches then seals; the consumer drains to
    /// end-of-stream. Every interleaving must deliver both items: close
    /// happens-after the last push, so `closed` + one final drain observes
    /// everything.
    fn outbox_scenario() {
        let ob = Arc::new(Outbox::<u32>::new());
        let producer = {
            let ob = ob.clone();
            model::spawn(move || {
                ob.push(1);
                ob.push(2);
                ob.close();
            })
        };
        let mut got = Vec::new();
        while let Some(batch) = ob.drain_wait() {
            got.extend(batch);
        }
        producer.join();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "torn seal: pushed items lost at close");
    }

    #[test]
    fn model_outbox_produce_drain_seal_clean() {
        let cfg = Config { max_preemptions: 2, ..Config::default() };
        let stats = model::check(&cfg, outbox_scenario)
            .unwrap_or_else(|v| panic!("outbox protocol violated:\n{v}"));
        assert!(stats.exhausted, "bounded schedule space not exhausted: {stats:?}");
        assert!(stats.ops.contains("atomic.cas"), "push CAS never explored: {:?}", stats.ops);
        eprintln!("[model] outbox clean: {stats:?}");
    }

    /// Seeding `runtime.outbox_skip_final_drain` (skip the re-drain after
    /// observing `closed`) must fail deterministically: same seed, same
    /// minimal schedule, same exploration count.
    #[test]
    fn model_outbox_torn_seal_mutation_detected() {
        let cfg = Config {
            max_preemptions: 2,
            mutation: Some("runtime.outbox_skip_final_drain"),
            ..Config::default()
        };
        let v1 =
            model::check(&cfg, outbox_scenario).expect_err("seeded torn-seal bug must be detected");
        assert_eq!(v1.kind, ViolationKind::Panic, "unexpected violation:\n{v1}");
        assert!(v1.message.contains("torn seal"), "unexpected failure: {}", v1.message);
        let v2 = model::check(&cfg, outbox_scenario).expect_err("second run must also fail");
        assert_eq!(v1.schedule, v2.schedule, "minimal schedule not deterministic");
        assert_eq!(v1.schedules_explored, v2.schedules_explored);
        eprintln!("[model] outbox mutation:\n{v1}");
    }

    // ---- WorkerPool park / wake / steal / exit ----

    fn pool_shared(n: usize) -> Arc<PoolShared> {
        Arc::new(PoolShared {
            slots: RwLock::new((0..n).map(|_| Arc::new(WorkerSlot::new())).collect()),
            target: AtomicUsize::new(n),
            queued: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            idle: Mutex::new(()),
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            queue_wait_nanos: AtomicU64::new(0),
            nested_scopes: AtomicU64::new(0),
        })
    }

    fn fresh_scope() -> Arc<ScopeState> {
        Arc::new(ScopeState {
            pending: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    /// The production shutdown protocol (`WorkerPool::drop` / `resize`):
    /// retarget under the idle lock, then token every slot.
    fn shutdown(shared: &Arc<PoolShared>) {
        {
            let _guard = shared.idle.lock();
            shared.target.store(0, Ordering::SeqCst);
        }
        shared.wake_all();
    }

    /// One logical worker and one submitter race a single job through the
    /// sleeper-registration / queued-re-check handshake, then shut the pool
    /// down. The barrier is the untimed condvar wait production
    /// `WorkerPool::scope` uses, so a lost wakeup surfaces as a deadlock.
    fn pool_scenario() {
        let shared = pool_shared(1);
        let worker = {
            let shared = shared.clone();
            model::spawn(move || worker_loop(shared, 0))
        };
        let state = fresh_scope();
        let ran = Arc::new(AtomicBool::new(false));
        state.task_started();
        {
            let state = state.clone();
            let ran = ran.clone();
            shared.submit(Box::new(move || {
                ran.store(true, Ordering::SeqCst);
                state.task_finished();
            }));
        }
        state.wait_all();
        assert!(ran.load(Ordering::SeqCst), "scope barrier released before the task ran");
        shutdown(&shared);
        worker.join();
        assert_eq!(shared.executed.load(Ordering::Relaxed), 1);
        assert_eq!(shared.queued.load(Ordering::SeqCst), 0);
        assert_eq!(shared.sleepers.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn model_pool_park_wake_clean() {
        let cfg = Config { max_preemptions: 2, ..Config::default() };
        let stats = model::check(&cfg, pool_scenario)
            .unwrap_or_else(|v| panic!("worker-pool protocol violated:\n{v}"));
        assert!(stats.exhausted, "bounded schedule space not exhausted: {stats:?}");
        assert!(stats.ops.contains("cond.wait"), "park never explored: {:?}", stats.ops);
        eprintln!("[model] pool park/wake clean: {stats:?}");
    }

    /// Seeding `runtime.skip_park_recheck` (park without re-checking
    /// `queued` after registering as a sleeper) is the classic lost-wakeup
    /// bug: the submitter reads `sleepers == 0`, skips the wake, and both
    /// sides block forever. The checker must report it as a deadlock,
    /// deterministically.
    #[test]
    fn model_pool_lost_wakeup_mutation_detected() {
        let cfg = Config {
            max_preemptions: 2,
            mutation: Some("runtime.skip_park_recheck"),
            ..Config::default()
        };
        let v1 =
            model::check(&cfg, pool_scenario).expect_err("seeded lost-wakeup bug must be detected");
        assert_eq!(v1.kind, ViolationKind::Deadlock, "unexpected violation:\n{v1}");
        let v2 = model::check(&cfg, pool_scenario).expect_err("second run must also fail");
        assert_eq!(v1.schedule, v2.schedule, "minimal schedule not deterministic");
        assert_eq!(v1.schedules_explored, v2.schedules_explored);
        eprintln!("[model] pool mutation:\n{v1}");
    }

    /// Two deques, one live worker: both jobs are queued round-robin before
    /// the worker starts, so completing the barrier requires stealing the
    /// ownerless sibling deque's job. Also exercises the shrink/exit
    /// decision under the idle lock.
    fn steal_scenario() {
        let shared = pool_shared(2);
        let state = fresh_scope();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..2 {
            state.task_started();
            let state = state.clone();
            let done = done.clone();
            shared.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
                state.task_finished();
            }));
        }
        let worker = {
            let shared = shared.clone();
            model::spawn(move || worker_loop(shared, 1))
        };
        state.wait_all();
        assert_eq!(done.load(Ordering::SeqCst), 2, "a queued job was lost");
        shutdown(&shared);
        worker.join();
        assert_eq!(shared.executed.load(Ordering::Relaxed), 2);
        assert_eq!(shared.steals.load(Ordering::Relaxed), 1, "sibling deque was not stolen from");
        assert_eq!(shared.queued.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn model_pool_steal_and_exit_clean() {
        let cfg = Config { max_preemptions: 2, ..Config::default() };
        let stats = model::check(&cfg, steal_scenario)
            .unwrap_or_else(|v| panic!("steal/exit protocol violated:\n{v}"));
        assert!(stats.exhausted, "bounded schedule space not exhausted: {stats:?}");
        eprintln!("[model] pool steal/exit clean: {stats:?}");
    }
}
