//! Shared parallel runtime: a persistent, size-configurable worker pool with
//! scoped task submission.
//!
//! Vertexica's paper workload is superstep-structured: every superstep fans
//! out one worker-UDF invocation per vertex partition and joins at a barrier
//! (§2.2). The seed implementation spawned a fresh `crossbeam::thread::scope`
//! per superstep inside the SQL layer, paying thread start-up cost on the
//! hottest path and leaving the SQL engine and the coordinator with no shared
//! notion of parallelism. [`WorkerPool`] replaces that: threads are spawned
//! once, owned by the `Database`, reused across supersteps, resized on
//! demand, and shared by every layer (SQL transform execution, the
//! coordinator's superstep loop, and the BSP baseline engine).
//!
//! Design notes:
//!
//! * **Scoped submission.** [`WorkerPool::scope`] allows tasks to borrow from
//!   the caller's stack, like `std::thread::scope`, but runs them on the
//!   persistent pool. The scope does not return until every task submitted
//!   in it has finished, which is what makes the lifetime erasure sound.
//! * **Panic propagation.** A panicking task does not take down the worker
//!   thread; the first panic payload is captured and re-thrown from
//!   `scope()` on the submitting thread.
//! * **Sequential fallback.** A pool of size 1 (or a single-item
//!   [`WorkerPool::map_indexed`]) executes inline on the calling thread, so
//!   `worker_threads = 1` is genuinely sequential and nested use cannot
//!   deadlock.
//! * **No nesting.** Calling `scope` *from inside a pool task* is not
//!   supported (tasks would queue behind their own scope); all engine call
//!   sites submit from coordinator/user threads.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

enum Message {
    Run(Job),
    Exit,
}

struct PoolShared {
    queue: Mutex<VecDeque<Message>>,
    available: Condvar,
}

impl PoolShared {
    fn push(&self, msg: Message) {
        self.queue.lock().unwrap().push_back(msg);
        self.available.notify_one();
    }

    fn pop(&self) -> Message {
        let mut queue = self.queue.lock().unwrap();
        loop {
            if let Some(msg) = queue.pop_front() {
                return msg;
            }
            queue = self.available.wait(queue).unwrap();
        }
    }
}

/// A persistent pool of worker threads with scoped task submission.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Desired number of workers; the source of truth for [`size`](Self::size).
    target: AtomicUsize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("size", &self.size()).finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `size` workers (clamped to at least 1).
    pub fn new(size: usize) -> Self {
        let pool = WorkerPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
            }),
            target: AtomicUsize::new(0),
            handles: Mutex::new(Vec::new()),
        };
        pool.resize(size);
        pool
    }

    /// A pool sized to the machine's core count.
    pub fn with_default_size() -> Self {
        Self::new(default_parallelism())
    }

    /// The configured number of workers.
    pub fn size(&self) -> usize {
        self.target.load(Ordering::SeqCst)
    }

    /// Grows or shrinks the pool to `size` workers (clamped to at least 1).
    /// Pending tasks are never dropped; shrinking takes effect once the
    /// excess workers drain the queue to an exit marker.
    pub fn resize(&self, size: usize) {
        let size = size.max(1);
        let mut handles = self.handles.lock().unwrap();
        // Opportunistically reap workers that already exited from a shrink.
        handles.retain(|h| !h.is_finished());
        let current = self.target.swap(size, Ordering::SeqCst);
        if size > current {
            for _ in current..size {
                let shared = self.shared.clone();
                handles.push(
                    std::thread::Builder::new()
                        .name("vertexica-worker".into())
                        .spawn(move || worker_loop(shared))
                        .expect("spawn pool worker"),
                );
            }
        } else {
            for _ in size..current {
                self.shared.push(Message::Exit);
            }
        }
    }

    /// Runs `f` with a [`Scope`] through which tasks borrowing from the
    /// enclosing environment can be submitted to the pool. Returns only after
    /// every submitted task has completed. If any task panicked, the first
    /// panic is re-thrown here.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let state = Arc::new(ScopeState {
            pending: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let scope = Scope { pool: self, state: state.clone(), _env: std::marker::PhantomData };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // The barrier below is what makes `spawn`'s lifetime erasure sound:
        // no borrow handed to a task outlives this function's frame.
        state.wait_all();
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = state.panic.lock().unwrap().take() {
                    resume_unwind(payload);
                }
                value
            }
        }
    }

    /// Applies `f` to every item on the pool, returning results **in input
    /// order**. Single-item or single-worker calls run inline on the calling
    /// thread (sequential fallback).
    pub fn map_indexed<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if items.len() <= 1 || self.size() <= 1 {
            return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let n = items.len();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        self.scope(|scope| {
            for (i, item) in items.into_iter().enumerate() {
                let f = &f;
                let slots = &slots;
                scope.spawn(move || {
                    *slots[i].lock().unwrap() = Some(f(i, item));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("pool task completed"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut handles = self.handles.lock().unwrap();
        for _ in 0..handles.len() {
            self.shared.push(Message::Exit);
        }
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    while let Message::Run(job) = shared.pop() {
        job();
    }
}

struct ScopeState {
    pending: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn task_started(&self) {
        *self.pending.lock().unwrap() += 1;
    }

    fn task_finished(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait_all(&self) {
        let mut pending = self.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.all_done.wait(pending).unwrap();
        }
    }
}

/// Handle for submitting borrowing tasks to the pool within a
/// [`WorkerPool::scope`] call.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope WorkerPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: std::marker::PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Submits a task that may borrow from the environment enclosing the
    /// scope. The task runs on a pool worker; panics are captured and
    /// re-thrown from the enclosing `scope()` call.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.task_started();
        let state = self.state.clone();
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(task));
            if let Err(payload) = result {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            state.task_finished();
        });
        // SAFETY: `scope()` blocks until `pending` reaches zero before
        // returning (even when the scope body panics), so every borrow
        // captured by `job` is live until after the job completes. The
        // transmute only erases the `'env` lifetime to `'static`.
        let job: Job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
        self.pool.shared.push(Message::Run(job));
    }
}

/// The machine's available parallelism, with a sane fallback.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;
    use std::thread::ThreadId;

    #[test]
    fn executes_all_tasks() {
        let pool = WorkerPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn tasks_borrow_from_stack() {
        let pool = WorkerPool::new(2);
        let data = vec![1u64, 2, 3, 4];
        let sums: Vec<Mutex<u64>> = (0..4).map(|_| Mutex::new(0)).collect();
        pool.scope(|s| {
            for (i, slot) in sums.iter().enumerate() {
                let data = &data;
                s.spawn(move || {
                    *slot.lock().unwrap() = data[i] * 10;
                });
            }
        });
        let total: u64 = sums.iter().map(|m| *m.lock().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn pool_threads_are_reused_across_scopes() {
        // The defining property of the refactor: consecutive supersteps
        // (scopes) run on the same persistent threads, not fresh spawns.
        let pool = WorkerPool::new(3);
        let observe = |pool: &WorkerPool| -> HashSet<ThreadId> {
            let ids = Mutex::new(HashSet::new());
            pool.scope(|s| {
                for _ in 0..32 {
                    let ids = &ids;
                    s.spawn(move || {
                        ids.lock().unwrap().insert(std::thread::current().id());
                        // Brief yield so multiple workers participate.
                        std::thread::yield_now();
                    });
                }
            });
            ids.into_inner().unwrap()
        };
        let first = observe(&pool);
        let second = observe(&pool);
        assert!(!first.is_empty());
        assert!(
            second.is_subset(&first),
            "scope 2 ran on threads outside the persistent pool: {second:?} vs {first:?}"
        );
    }

    #[test]
    fn panic_in_task_propagates_to_scope_caller() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom from worker"));
                s.spawn(|| { /* healthy sibling task */ });
            });
        }));
        let payload = result.expect_err("scope should rethrow the task panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_else(|| payload.downcast_ref::<String>().unwrap().as_str());
        assert!(msg.contains("boom from worker"));
        // The pool survives the panic and keeps executing.
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn map_indexed_preserves_input_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..64).rev().collect();
        let out = pool.map_indexed(items.clone(), |_, x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn size_one_pool_runs_inline_and_sequential() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.size(), 1);
        let caller = std::thread::current().id();
        let out = pool.map_indexed(vec![1, 2, 3], |i, x| {
            assert_eq!(std::thread::current().id(), caller, "sequential fallback must run inline");
            i + x
        });
        assert_eq!(out, vec![1, 3, 5]);
    }

    #[test]
    fn resize_grows_and_shrinks() {
        let pool = WorkerPool::new(1);
        pool.resize(4);
        assert_eq!(pool.size(), 4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        pool.resize(0); // clamps to 1
        assert_eq!(pool.size(), 1);
        pool.scope(|s| {
            s.spawn(|| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 17);
    }

    #[test]
    fn scope_body_panic_still_joins_tasks() {
        let pool = WorkerPool::new(2);
        let finished = Arc::new(AtomicU64::new(0));
        let finished2 = finished.clone();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let finished = finished2.clone();
                s.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    finished.fetch_add(1, Ordering::SeqCst);
                });
                panic!("scope body panic");
            });
        }));
        assert!(result.is_err());
        // The spawned task must have completed before scope unwound.
        assert_eq!(finished.load(Ordering::SeqCst), 1);
    }
}
