//! Model-instrumented sync primitives.
//!
//! These types wrap the `std::sync` primitives and report every operation to
//! the [`super::model`] scheduler as a schedule point. Outside an active model
//! execution (i.e. on threads that are not logical threads of a
//! [`super::model::check`] run) every hook is a no-op and the types behave
//! exactly like their `std` counterparts, so a `--cfg vertexica_model` build
//! still runs the ordinary test suite correctly — just with a cheap
//! thread-local check per operation.
//!
//! Ordering invariant that keeps real and model state consistent: the *real*
//! primitive is only acquired after the model grants ownership, and released
//! before the model releases ownership. A logical thread therefore never
//! blocks on a real primitive (which would stall the cooperative scheduler) —
//! all blocking happens inside the model.
//!
//! Mixing model and non-model threads on the *same* primitive instance is
//! unsupported; model scenarios must confine the structures they build to
//! their own logical threads.

use std::sync::atomic::Ordering;
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

use super::model;

fn id_of<T: ?Sized>(x: &T) -> usize {
    x as *const T as *const () as usize
}

fn unpoison<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutex whose acquire/release are schedule points under the model checker.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking (cooperatively, under the model) until it
    /// is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let intercepted = model::in_model();
        if intercepted {
            model::on_mutex_lock(id_of(self));
        }
        MutexGuard { lock: self, inner: Some(unpoison(self.inner.lock())), model: intercepted }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match model::on_mutex_try_lock(id_of(self)) {
            Some(false) => None,
            Some(true) => Some(MutexGuard {
                lock: self,
                // The model granted ownership, so the real lock is free.
                inner: Some(unpoison(self.inner.lock())),
                model: true,
            }),
            None => match self.inner.try_lock() {
                Ok(g) => Some(MutexGuard { lock: self, inner: Some(g), model: false }),
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    Some(MutexGuard { lock: self, inner: Some(e.into_inner()), model: false })
                }
                Err(std::sync::TryLockError::WouldBlock) => None,
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]; releases the model-level lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    model: bool,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard still holds the lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first so the next model-granted owner finds
        // it free, then release model-level ownership (waking waiters).
        self.inner = None;
        if self.model {
            model::on_mutex_unlock(id_of(self.lock));
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock whose operations are schedule points under the model.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: StdRwLock::new(value) }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared (read) access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let intercepted = model::in_model();
        if intercepted {
            model::on_rw_read(id_of(self));
        }
        RwLockReadGuard { lock: self, inner: Some(unpoison(self.inner.read())), model: intercepted }
    }

    /// Acquires exclusive (write) access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let intercepted = model::in_model();
        if intercepted {
            model::on_rw_write(id_of(self));
        }
        RwLockWriteGuard {
            lock: self,
            inner: Some(unpoison(self.inner.write())),
            model: intercepted,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockReadGuard<'a, T>>,
    model: bool,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still holds the lock")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.model {
            model::on_rw_unlock_read(id_of(self.lock));
        }
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockWriteGuard<'a, T>>,
    model: bool,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard still holds the lock")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.model {
            model::on_rw_unlock_write(id_of(self.lock));
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A condition variable with a consume-style guard API, intercepted by the
/// model checker so waits and notifies become schedule points.
#[derive(Default)]
pub struct Condvar {
    std: StdCondvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { std: StdCondvar::new() }
    }

    /// Atomically releases `guard`'s mutex and waits for a notification,
    /// reacquiring the mutex before returning.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let (lock, inner, model) = decompose(guard);
        if model {
            drop(inner);
            let _ = model::on_cond_wait(id_of(self), id_of(lock), false);
            // The model reacquired ownership for us; take the real lock.
            MutexGuard { lock, inner: Some(unpoison(lock.inner.lock())), model: true }
        } else {
            let inner = inner.expect("guard still holds the lock");
            let inner = unpoison(self.std.wait(inner));
            MutexGuard { lock, inner: Some(inner), model: false }
        }
    }

    /// Like [`Condvar::wait`] with a timeout; the boolean is `true` if the
    /// wait timed out. Under the model, timeouts fire only at quiescence
    /// (see the module docs of [`super::model`]).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (lock, inner, model) = decompose(guard);
        if model {
            drop(inner);
            let timed_out = model::on_cond_wait(id_of(self), id_of(lock), true).unwrap_or(false);
            (MutexGuard { lock, inner: Some(unpoison(lock.inner.lock())), model: true }, timed_out)
        } else {
            let inner = inner.expect("guard still holds the lock");
            let (inner, res) = unpoison(self.std.wait_timeout(inner, timeout));
            (MutexGuard { lock, inner: Some(inner), model: false }, res.timed_out())
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        if model::in_model() {
            model::on_cond_notify(id_of(self), false);
        }
        self.std.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        if model::in_model() {
            model::on_cond_notify(id_of(self), true);
        }
        self.std.notify_all();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Takes a guard apart without running its `Drop` (so the caller controls
/// when the real and model releases happen).
fn decompose<T: ?Sized>(
    guard: MutexGuard<'_, T>,
) -> (&Mutex<T>, Option<StdMutexGuard<'_, T>>, bool) {
    let mut guard = guard;
    let lock = guard.lock;
    let inner = guard.inner.take();
    let model = guard.model;
    guard.model = false; // drop of `guard` is now a no-op
    (lock, inner, model)
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! int_atomic {
    ($(#[$doc:meta])* $name:ident, $std:path, $prim:ty) => {
        $(#[$doc])*
        #[derive(Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(v: $prim) -> Self {
                Self { inner: <$std>::new(v) }
            }

            /// Consumes the atomic and returns the value.
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }

            /// Mutable access without synchronization.
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            /// Atomic load (a schedule point under the model).
            pub fn load(&self, order: Ordering) -> $prim {
                model::on_op("atomic.load");
                self.inner.load(order)
            }

            /// Atomic store (a schedule point under the model).
            pub fn store(&self, v: $prim, order: Ordering) {
                model::on_op("atomic.store");
                self.inner.store(v, order)
            }

            /// Atomic swap (a schedule point under the model).
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                model::on_op("atomic.rmw");
                self.inner.swap(v, order)
            }

            /// Atomic compare-and-exchange (a schedule point under the model).
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                model::on_op("atomic.cas");
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Weak compare-and-exchange (a schedule point under the model).
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                model::on_op("atomic.cas");
                self.inner.compare_exchange_weak(current, new, success, failure)
            }

            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                model::on_op("atomic.rmw");
                self.inner.fetch_add(v, order)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                model::on_op("atomic.rmw");
                self.inner.fetch_sub(v, order)
            }

            /// Atomic maximum, returning the previous value.
            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                model::on_op("atomic.rmw");
                self.inner.fetch_max(v, order)
            }

            /// Atomic minimum, returning the previous value.
            pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                model::on_op("atomic.rmw");
                self.inner.fetch_min(v, order)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name)).field(&self.inner).finish()
            }
        }
    };
}

int_atomic!(
    /// An instrumented `AtomicU8`.
    AtomicU8,
    std::sync::atomic::AtomicU8,
    u8
);
int_atomic!(
    /// An instrumented `AtomicU64`.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
int_atomic!(
    /// An instrumented `AtomicUsize`.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);

/// An instrumented `AtomicBool`.
#[derive(Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new atomic boolean.
    pub const fn new(v: bool) -> Self {
        AtomicBool { inner: std::sync::atomic::AtomicBool::new(v) }
    }

    /// Consumes the atomic and returns the value.
    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }

    /// Mutable access without synchronization.
    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }

    /// Atomic load (a schedule point under the model).
    pub fn load(&self, order: Ordering) -> bool {
        model::on_op("atomic.load");
        self.inner.load(order)
    }

    /// Atomic store (a schedule point under the model).
    pub fn store(&self, v: bool, order: Ordering) {
        model::on_op("atomic.store");
        self.inner.store(v, order)
    }

    /// Atomic swap (a schedule point under the model).
    pub fn swap(&self, v: bool, order: Ordering) -> bool {
        model::on_op("atomic.rmw");
        self.inner.swap(v, order)
    }

    /// Atomic compare-and-exchange (a schedule point under the model).
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        model::on_op("atomic.cas");
        self.inner.compare_exchange(current, new, success, failure)
    }

    /// Atomic OR, returning the previous value.
    pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
        model::on_op("atomic.rmw");
        self.inner.fetch_or(v, order)
    }

    /// Atomic AND, returning the previous value.
    pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
        model::on_op("atomic.rmw");
        self.inner.fetch_and(v, order)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool").field(&self.inner).finish()
    }
}

/// An instrumented `AtomicPtr`.
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

impl<T> AtomicPtr<T> {
    /// Creates a new atomic pointer.
    pub const fn new(p: *mut T) -> Self {
        AtomicPtr { inner: std::sync::atomic::AtomicPtr::new(p) }
    }

    /// Consumes the atomic and returns the pointer.
    pub fn into_inner(self) -> *mut T {
        self.inner.into_inner()
    }

    /// Mutable access without synchronization.
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.inner.get_mut()
    }

    /// Atomic load (a schedule point under the model).
    pub fn load(&self, order: Ordering) -> *mut T {
        model::on_op("atomic.load");
        self.inner.load(order)
    }

    /// Atomic store (a schedule point under the model).
    pub fn store(&self, p: *mut T, order: Ordering) {
        model::on_op("atomic.store");
        self.inner.store(p, order)
    }

    /// Atomic swap (a schedule point under the model).
    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        model::on_op("atomic.rmw");
        self.inner.swap(p, order)
    }

    /// Atomic compare-and-exchange (a schedule point under the model).
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        model::on_op("atomic.cas");
        self.inner.compare_exchange(current, new, success, failure)
    }

    /// Weak compare-and-exchange (a schedule point under the model).
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        model::on_op("atomic.cas");
        self.inner.compare_exchange_weak(current, new, success, failure)
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        AtomicPtr::new(std::ptr::null_mut())
    }
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicPtr").field(&self.inner).finish()
    }
}

/// An atomic memory fence (a schedule point under the model).
pub fn fence(order: Ordering) {
    model::on_op("fence");
    std::sync::atomic::fence(order);
}
