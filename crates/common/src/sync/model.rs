//! Bounded-interleaving model checker behind the [`crate::sync`] seam.
//!
//! The checker runs a scenario closure many times, each time forcing a
//! different interleaving of its logical threads. Threads are real OS threads
//! serialized cooperatively: exactly one thread (the *current* one) executes
//! at any instant, and every instrumented sync operation (lock, unlock,
//! atomic access, condvar wait/notify, spawn/join, fence) is a *schedule
//! point* where the scheduler may switch threads. Interleavings are explored
//! by depth-first search over the per-decision candidate ranks, bounded by a
//! preemption budget (CHESS-style): a schedule may switch away from a
//! runnable thread at most [`Config::max_preemptions`] times, which keeps the
//! space small while still covering the bug-dense low-preemption schedules.
//!
//! Determinism: candidate order at each decision is derived from
//! [`Config::seed`], the decision depth, and the thread ids — never from
//! wall-clock time or addresses — so the same seed always explores the same
//! schedules in the same order, and a failing schedule replays exactly.
//!
//! On a violation (panic in the scenario, deadlock, or step-budget livelock)
//! the checker *shrinks* the failing decision path by repeatedly zeroing the
//! deepest-possible nonzero rank and re-running, converging to a minimal
//! preemption schedule that still fails; the result is reported as a
//! [`Violation`] with the full [`ScheduleStep`] trace.
//!
//! Timed condvar waits are modeled with *quiescence timeouts*: a timed waiter
//! can only be woken by timeout when no other thread is runnable, and each
//! thread has a bounded budget of such wakes. This models "the timeout
//! eventually fires" without exploding the schedule space, while still
//! turning an un-signalled infinite poll loop into a detected deadlock once
//! the budget is spent.
//!
//! Memory-model caveat: the checker serializes every instrumented operation,
//! so it explores sequentially-consistent interleavings only; weak-memory
//! reorderings are out of scope.

use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsMutexGuard, Once};
use std::thread;

use crate::hash::splitmix64;

/// Budget and determinism knobs for one [`check`] run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Seed for the deterministic candidate ordering at each decision point.
    pub seed: u64,
    /// Maximum number of preemptive context switches per schedule
    /// (switching away from a thread that could have continued).
    pub max_preemptions: usize,
    /// Hard cap on the number of schedules explored before giving up on
    /// exhausting the space ([`Stats::exhausted`] stays `false` if hit).
    pub max_schedules: u64,
    /// Per-schedule step budget; exceeding it is reported as a livelock.
    pub max_steps: usize,
    /// Per-thread budget of timeout wakes for timed condvar waits.
    pub timeout_wakes: usize,
    /// Name of the seeded bug to enable via [`mutation_enabled`] during this
    /// check, for mutation-proving that the model actually detects the bug.
    pub mutation: Option<&'static str>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 0x5EED_CAFE,
            max_preemptions: 3,
            max_schedules: 50_000,
            max_steps: 20_000,
            timeout_wakes: 8,
            mutation: None,
        }
    }
}

/// What went wrong in a failing schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// No thread was runnable and no timed wait could fire, but threads were
    /// still alive.
    Deadlock,
    /// The per-schedule step budget was exhausted (unbounded spin).
    Livelock,
    /// A logical thread panicked (failed assertion or library panic).
    Panic,
}

/// One scheduling decision in a failing schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleStep {
    /// Decision index within the schedule (branching decisions only).
    pub index: usize,
    /// Logical thread id that was chosen to run.
    pub thread: usize,
    /// The seam operation at which the decision was taken.
    pub op: &'static str,
    /// Whether this decision preempted a thread that could have continued.
    pub preemptive: bool,
}

/// A minimal failing schedule, produced by shrinking the first failure found.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Failure class.
    pub kind: ViolationKind,
    /// Human-readable description (panic message or stuck-thread dump).
    pub message: String,
    /// The shrunk decision trace that reproduces the failure.
    pub schedule: Vec<ScheduleStep>,
    /// Number of preemptive switches in the shrunk schedule.
    pub preemptions: usize,
    /// Schedules explored before the first failure was found.
    pub schedules_explored: u64,
    /// Seed the exploration ran with (for replay).
    pub seed: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:?} after {} schedules (seed {:#x}, {} preemptions): {}",
            self.kind, self.schedules_explored, self.seed, self.preemptions, self.message
        )?;
        for s in &self.schedule {
            writeln!(
                f,
                "  #{:<3} thread {} at {}{}",
                s.index,
                s.thread,
                s.op,
                if s.preemptive { "  [preempt]" } else { "" }
            )?;
        }
        Ok(())
    }
}

/// Exploration statistics for a clean (violation-free) check.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Total schedules executed.
    pub schedules: u64,
    /// Deepest branching-decision count seen in any schedule.
    pub max_decision_depth: usize,
    /// Largest per-schedule step count seen.
    pub max_steps_seen: usize,
    /// The preemption bound the exploration ran with.
    pub preemption_bound: usize,
    /// `true` if the bounded schedule space was fully exhausted (as opposed
    /// to stopping at [`Config::max_schedules`]).
    pub exhausted: bool,
    /// Distinct seam operation names intercepted during exploration.
    pub ops: BTreeSet<&'static str>,
}

#[derive(Debug, Clone, Copy)]
struct Decision {
    rank: usize,
    n: usize,
    chosen: usize,
    op: &'static str,
    preemptive: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedRead(usize),
    BlockedWrite(usize),
    CondWait { cv: usize, timed: bool },
    BlockedJoin(usize),
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    depri: bool,
    timed_out: bool,
    timeout_budget: usize,
}

#[derive(Debug, Default)]
struct RwState {
    writer: Option<usize>,
    readers: usize,
}

struct ExecInner {
    seed: u64,
    max_preemptions: usize,
    max_steps: usize,
    timeout_wakes: usize,
    threads: Vec<ThreadState>,
    current: usize,
    live: usize,
    steps: usize,
    preemptions: usize,
    path: Vec<Decision>,
    cursor: usize,
    mutexes: HashMap<usize, usize>,
    rws: HashMap<usize, RwState>,
    aborted: bool,
    done: bool,
    violation: Option<(ViolationKind, String)>,
    ops: BTreeSet<&'static str>,
    handles: Vec<thread::JoinHandle<()>>,
}

struct Execution {
    inner: OsMutex<ExecInner>,
    cv: OsCondvar,
}

/// Panic payload used to unwind logical threads when an execution aborts.
struct AbortToken;

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Returns `true` when the calling thread is a logical thread inside an
/// active model execution (so seam primitives should be intercepted).
pub fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Logical thread id of the caller inside a model execution, if any.
pub fn thread_id() -> Option<usize> {
    CTX.with(|c| c.borrow().as_ref().map(|(_, t)| *t))
}

fn lock_inner(m: &OsMutex<ExecInner>) -> OsMutexGuard<'_, ExecInner> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Execution {
    fn lock(&self) -> OsMutexGuard<'_, ExecInner> {
        lock_inner(&self.inner)
    }

    /// Records an op + step at a schedule point; aborts via `AbortToken` if
    /// the execution is already tearing down or the step budget is spent.
    fn enter(&self, op: &'static str) -> OsMutexGuard<'_, ExecInner> {
        let mut g = self.lock();
        if g.aborted {
            drop(g);
            panic::panic_any(AbortToken);
        }
        g.ops.insert(op);
        g.steps += 1;
        if g.steps > g.max_steps {
            let msg = format!("step budget {} exhausted at {op}", g.max_steps);
            self.raise(&mut g, ViolationKind::Livelock, msg);
            drop(g);
            panic::panic_any(AbortToken);
        }
        g
    }

    fn raise(&self, g: &mut ExecInner, kind: ViolationKind, msg: String) {
        if g.violation.is_none() {
            g.violation = Some((kind, msg));
        }
        g.aborted = true;
        self.cv.notify_all();
    }

    /// Picks the next thread to run. `tid` must be the current thread.
    /// `voluntary` marks a `yield_now`, whose switch-away is not a preemption.
    fn reschedule(&self, g: &mut ExecInner, tid: usize, op: &'static str, voluntary: bool) {
        debug_assert_eq!(g.current, tid, "only the current thread may reschedule");
        let runnable = |t: &ThreadState| t.status == Status::Runnable;
        let mut cands: Vec<usize> = (0..g.threads.len())
            .filter(|&t| runnable(&g.threads[t]) && !g.threads[t].depri)
            .collect();
        if cands.is_empty() {
            cands = (0..g.threads.len()).filter(|&t| runnable(&g.threads[t])).collect();
            for &t in &cands {
                g.threads[t].depri = false;
            }
        }
        let mut timeout_pick = false;
        if cands.is_empty() {
            // Quiescent: only timed condvar waiters (with budget left) can go.
            cands = (0..g.threads.len())
                .filter(|&t| {
                    matches!(g.threads[t].status, Status::CondWait { timed: true, .. })
                        && g.threads[t].timeout_budget > 0
                })
                .collect();
            timeout_pick = true;
            if cands.is_empty() {
                if g.live == 0 {
                    g.done = true;
                    self.cv.notify_all();
                    return;
                }
                let msg = describe_stuck(g);
                self.raise(g, ViolationKind::Deadlock, msg);
                return;
            }
        }
        let self_runnable = !timeout_pick && cands.contains(&tid);
        let order: Vec<usize> = if self_runnable && g.preemptions >= g.max_preemptions {
            vec![tid]
        } else {
            let depth = g.cursor;
            let seed = g.seed;
            // Exclude tid only when it is being prepended as the rank-0
            // "continue current" choice; a blocked tid that re-entered the
            // candidate set as a timed-out waiter must stay eligible.
            let mut rest: Vec<usize> =
                cands.iter().copied().filter(|&t| !(self_runnable && t == tid)).collect();
            rest.sort_by_key(|&t| (rank_key(seed, depth, t), t));
            if self_runnable {
                let mut o = vec![tid];
                o.extend(rest);
                o
            } else {
                rest
            }
        };
        let n = order.len();
        let chosen = if n == 1 {
            order[0]
        } else {
            let rank = if g.cursor < g.path.len() { g.path[g.cursor].rank.min(n - 1) } else { 0 };
            let chosen = order[rank];
            let preemptive = self_runnable && !voluntary && chosen != tid;
            if g.cursor < g.path.len() {
                let d = &mut g.path[g.cursor];
                d.rank = rank;
                d.n = n;
                d.chosen = chosen;
                d.op = op;
                d.preemptive = preemptive;
            } else {
                g.path.push(Decision { rank, n, chosen, op, preemptive });
            }
            g.cursor += 1;
            if preemptive {
                g.preemptions += 1;
            }
            chosen
        };
        if timeout_pick {
            let t = &mut g.threads[chosen];
            t.status = Status::Runnable;
            t.timed_out = true;
            t.timeout_budget -= 1;
        }
        for t in 0..g.threads.len() {
            if t != chosen {
                g.threads[t].depri = false;
            }
        }
        g.current = chosen;
        if chosen != tid {
            self.cv.notify_all();
        }
    }

    /// Blocks until `tid` is the current runnable thread (or aborts).
    fn wait_turn<'a>(
        &'a self,
        mut g: OsMutexGuard<'a, ExecInner>,
        tid: usize,
    ) -> OsMutexGuard<'a, ExecInner> {
        loop {
            if g.aborted {
                drop(g);
                panic::panic_any(AbortToken);
            }
            if g.current == tid && g.threads[tid].status == Status::Runnable {
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A plain schedule point (atomic op, fence, event).
    fn op(&self, tid: usize, name: &'static str) {
        let mut g = self.enter(name);
        self.reschedule(&mut g, tid, name, false);
        let _g = self.wait_turn(g, tid);
    }

    fn yield_op(&self, tid: usize) {
        let mut g = self.enter("thread.yield");
        g.threads[tid].depri = true;
        self.reschedule(&mut g, tid, "thread.yield", true);
        let _g = self.wait_turn(g, tid);
    }

    fn mutex_lock(&self, tid: usize, id: usize) {
        let mut g = self.enter("mutex.lock");
        self.reschedule(&mut g, tid, "mutex.lock", false);
        g = self.wait_turn(g, tid);
        loop {
            if let std::collections::hash_map::Entry::Vacant(e) = g.mutexes.entry(id) {
                e.insert(tid);
                return;
            }
            g.threads[tid].status = Status::BlockedMutex(id);
            self.reschedule(&mut g, tid, "mutex.blocked", false);
            g = self.wait_turn(g, tid);
        }
    }

    fn mutex_try_lock(&self, tid: usize, id: usize) -> bool {
        let mut g = self.enter("mutex.try_lock");
        self.reschedule(&mut g, tid, "mutex.try_lock", false);
        g = self.wait_turn(g, tid);
        if let std::collections::hash_map::Entry::Vacant(e) = g.mutexes.entry(id) {
            e.insert(tid);
            true
        } else {
            false
        }
    }

    fn wake_mutex_waiters(g: &mut ExecInner, id: usize) {
        for t in 0..g.threads.len() {
            if g.threads[t].status == Status::BlockedMutex(id) {
                g.threads[t].status = Status::Runnable;
            }
        }
    }

    fn mutex_unlock(&self, tid: usize, id: usize) {
        let mut g = self.enter("mutex.unlock");
        debug_assert_eq!(g.mutexes.get(&id), Some(&tid), "unlock by non-owner");
        g.mutexes.remove(&id);
        Self::wake_mutex_waiters(&mut g, id);
        self.reschedule(&mut g, tid, "mutex.unlock", false);
        let _g = self.wait_turn(g, tid);
    }

    fn rw_read(&self, tid: usize, id: usize) {
        let mut g = self.enter("rw.read");
        self.reschedule(&mut g, tid, "rw.read", false);
        g = self.wait_turn(g, tid);
        loop {
            let st = g.rws.entry(id).or_default();
            if st.writer.is_none() {
                st.readers += 1;
                return;
            }
            g.threads[tid].status = Status::BlockedRead(id);
            self.reschedule(&mut g, tid, "rw.read_blocked", false);
            g = self.wait_turn(g, tid);
        }
    }

    fn rw_write(&self, tid: usize, id: usize) {
        let mut g = self.enter("rw.write");
        self.reschedule(&mut g, tid, "rw.write", false);
        g = self.wait_turn(g, tid);
        loop {
            let st = g.rws.entry(id).or_default();
            if st.writer.is_none() && st.readers == 0 {
                st.writer = Some(tid);
                return;
            }
            g.threads[tid].status = Status::BlockedWrite(id);
            self.reschedule(&mut g, tid, "rw.write_blocked", false);
            g = self.wait_turn(g, tid);
        }
    }

    fn wake_rw_waiters(g: &mut ExecInner, id: usize, writers_only: bool) {
        for t in 0..g.threads.len() {
            let wake = match g.threads[t].status {
                Status::BlockedWrite(b) => b == id,
                Status::BlockedRead(b) => !writers_only && b == id,
                _ => false,
            };
            if wake {
                g.threads[t].status = Status::Runnable;
            }
        }
    }

    fn rw_unlock_read(&self, tid: usize, id: usize) {
        let mut g = self.enter("rw.read_unlock");
        let st = g.rws.entry(id).or_default();
        debug_assert!(st.readers > 0, "read-unlock with no readers");
        st.readers -= 1;
        if st.readers == 0 {
            Self::wake_rw_waiters(&mut g, id, true);
        }
        self.reschedule(&mut g, tid, "rw.read_unlock", false);
        let _g = self.wait_turn(g, tid);
    }

    fn rw_unlock_write(&self, tid: usize, id: usize) {
        let mut g = self.enter("rw.write_unlock");
        let st = g.rws.entry(id).or_default();
        debug_assert_eq!(st.writer, Some(tid), "write-unlock by non-writer");
        st.writer = None;
        Self::wake_rw_waiters(&mut g, id, false);
        self.reschedule(&mut g, tid, "rw.write_unlock", false);
        let _g = self.wait_turn(g, tid);
    }

    /// Atomically releases `mutex_id` and waits on `cv_id`; returns whether
    /// the wake was a (modeled) timeout. Reacquires the mutex before return.
    fn cond_wait(&self, tid: usize, cv_id: usize, mutex_id: usize, timed: bool) -> bool {
        let mut g = self.enter("cond.wait");
        debug_assert_eq!(g.mutexes.get(&mutex_id), Some(&tid), "cond.wait without the lock");
        g.mutexes.remove(&mutex_id);
        Self::wake_mutex_waiters(&mut g, mutex_id);
        g.threads[tid].status = Status::CondWait { cv: cv_id, timed };
        g.threads[tid].timed_out = false;
        self.reschedule(&mut g, tid, "cond.wait", false);
        g = self.wait_turn(g, tid);
        let timed_out = g.threads[tid].timed_out;
        loop {
            if let std::collections::hash_map::Entry::Vacant(e) = g.mutexes.entry(mutex_id) {
                e.insert(tid);
                return timed_out;
            }
            g.threads[tid].status = Status::BlockedMutex(mutex_id);
            self.reschedule(&mut g, tid, "mutex.blocked", false);
            g = self.wait_turn(g, tid);
        }
    }

    fn cond_notify(&self, tid: usize, cv_id: usize, all: bool) {
        let name = if all { "cond.notify_all" } else { "cond.notify_one" };
        let mut g = self.enter(name);
        let waiters: Vec<usize> = (0..g.threads.len())
            .filter(|&t| matches!(g.threads[t].status, Status::CondWait { cv, .. } if cv == cv_id))
            .collect();
        let to_wake: &[usize] = if all { &waiters } else { &waiters[..waiters.len().min(1)] };
        for &t in to_wake {
            g.threads[t].status = Status::Runnable;
            g.threads[t].timed_out = false;
        }
        self.reschedule(&mut g, tid, name, false);
        let _g = self.wait_turn(g, tid);
    }

    fn finish_thread(&self, tid: usize, payload: Option<Box<dyn Any + Send>>) {
        let mut g = self.lock();
        for t in 0..g.threads.len() {
            if g.threads[t].status == Status::BlockedJoin(tid) {
                g.threads[t].status = Status::Runnable;
            }
        }
        g.threads[tid].status = Status::Finished;
        g.live -= 1;
        if let Some(p) = payload {
            if !p.is::<AbortToken>() {
                let msg = payload_msg(p.as_ref());
                self.raise(&mut g, ViolationKind::Panic, msg);
            }
        }
        if g.live == 0 {
            g.done = true;
            self.cv.notify_all();
            return;
        }
        if g.aborted {
            self.cv.notify_all();
            return;
        }
        if g.current == tid {
            self.reschedule(&mut g, tid, "thread.exit", false);
        }
    }
}

fn rank_key(seed: u64, depth: usize, tid: usize) -> u64 {
    let mut s = seed
        ^ (depth as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (((tid as u64) << 32) | tid as u64);
    splitmix64(&mut s)
}

fn describe_stuck(g: &ExecInner) -> String {
    let mut msg = String::from("deadlock: no runnable thread and no timed wait can fire; ");
    for (t, st) in g.threads.iter().enumerate() {
        if st.status != Status::Finished {
            msg.push_str(&format!(
                "t{} {:?} (timeouts left {}); ",
                t, st.status, st.timeout_budget
            ));
        }
    }
    msg
}

fn payload_msg(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Seam entry points (called from `sync::instrumented`). Each is a no-op when
// the calling thread is not a logical thread of an active execution, or when
// it is already unwinding (teardown must not re-enter the scheduler).
// ---------------------------------------------------------------------------

macro_rules! seam_hook {
    ($(#[$doc:meta])* $name:ident ( $($arg:ident : $ty:ty),* ) => $method:ident) => {
        $(#[$doc])*
        pub(crate) fn $name($($arg: $ty),*) {
            if thread::panicking() {
                return;
            }
            if let Some((e, tid)) = ctx() {
                e.$method(tid $(, $arg)*);
            }
        }
    };
}

seam_hook!(
    /// Plain schedule point for atomics, fences, and named events.
    on_op(name: &'static str) => op
);
seam_hook!(
    /// Model-level mutex acquire (blocks until granted).
    on_mutex_lock(id: usize) => mutex_lock
);
seam_hook!(
    /// Model-level mutex release.
    on_mutex_unlock(id: usize) => mutex_unlock
);
seam_hook!(
    /// Model-level shared (read) acquire.
    on_rw_read(id: usize) => rw_read
);
seam_hook!(
    /// Model-level exclusive (write) acquire.
    on_rw_write(id: usize) => rw_write
);
seam_hook!(
    /// Model-level shared release.
    on_rw_unlock_read(id: usize) => rw_unlock_read
);
seam_hook!(
    /// Model-level exclusive release.
    on_rw_unlock_write(id: usize) => rw_unlock_write
);

/// Model-level `try_lock`; `None` means "not intercepted" (caller should hit
/// the real primitive), `Some(granted)` is the model's verdict.
pub(crate) fn on_mutex_try_lock(id: usize) -> Option<bool> {
    if thread::panicking() {
        return None;
    }
    ctx().map(|(e, tid)| e.mutex_try_lock(tid, id))
}

/// Model-level condvar wait; `None` means "not intercepted".
/// `Some(timed_out)` reports whether the wake was a modeled timeout.
pub(crate) fn on_cond_wait(cv_id: usize, mutex_id: usize, timed: bool) -> Option<bool> {
    if thread::panicking() {
        return None;
    }
    ctx().map(|(e, tid)| e.cond_wait(tid, cv_id, mutex_id, timed))
}

seam_hook!(
    /// Model-level condvar notify (one or all).
    on_cond_notify(cv_id: usize, all: bool) => cond_notify
);

/// Cooperative yield: deprioritizes the caller for one decision so spin
/// loops make progress for their peers instead of burning the step budget.
pub fn yield_now() {
    if thread::panicking() {
        return;
    }
    if let Some((e, tid)) = ctx() {
        e.yield_op(tid);
    } else {
        thread::yield_now();
    }
}

/// Handle to a logical thread spawned with [`spawn`].
pub struct JoinHandle<T> {
    tid: usize,
    slot: Arc<OsMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Logical thread id of the spawned thread.
    pub fn thread_id(&self) -> usize {
        self.tid
    }

    /// Blocks (in the model) until the thread finishes and returns its value.
    pub fn join(self) -> T {
        let (exec, me) = ctx().expect("model::JoinHandle::join outside a model execution");
        let mut g = exec.enter("thread.join");
        loop {
            if g.threads[self.tid].status == Status::Finished {
                break;
            }
            g.threads[me].status = Status::BlockedJoin(self.tid);
            exec.reschedule(&mut g, me, "thread.join", false);
            g = exec.wait_turn(g, me);
        }
        drop(g);
        let v = self.slot.lock().unwrap_or_else(|e| e.into_inner()).take();
        match v {
            Some(v) => v,
            // The child died during an abort; propagate the teardown.
            None => panic::panic_any(AbortToken),
        }
    }
}

/// Spawns a logical thread inside the current model execution.
///
/// Must be called from inside a [`check`] scenario (or a thread it spawned).
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, parent) = ctx().expect("model::spawn outside a model execution");
    let slot: Arc<OsMutex<Option<T>>> = Arc::new(OsMutex::new(None));
    let mut g = exec.enter("thread.spawn");
    let child = g.threads.len();
    let budget = g.timeout_wakes;
    g.threads.push(ThreadState {
        status: Status::Runnable,
        depri: false,
        timed_out: false,
        timeout_budget: budget,
    });
    g.live += 1;
    let exec2 = Arc::clone(&exec);
    let slot2 = Arc::clone(&slot);
    let h = thread::Builder::new()
        .name(format!("vx-model-{child}"))
        .spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec2), child)));
            let r = panic::catch_unwind(AssertUnwindSafe(|| {
                let g = exec2.lock();
                drop(exec2.wait_turn(g, child));
                f()
            }));
            CTX.with(|c| *c.borrow_mut() = None);
            match r {
                Ok(v) => {
                    *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                    exec2.finish_thread(child, None);
                }
                Err(p) => exec2.finish_thread(child, Some(p)),
            }
        })
        .expect("failed to spawn model thread");
    g.handles.push(h);
    exec.reschedule(&mut g, parent, "thread.spawn", false);
    drop(exec.wait_turn(g, parent));
    JoinHandle { tid: child, slot }
}

// ---------------------------------------------------------------------------
// Mutation registry: checks enable one named seeded bug; production code
// consults `mutation_enabled` at the guarded site. In normal builds this is
// a const `false` so the guard folds away.
// ---------------------------------------------------------------------------

static MUTATION: OsMutex<Option<&'static str>> = OsMutex::new(None);

/// Whether the named seeded bug is active for the current model check.
#[cfg(vertexica_model)]
pub fn mutation_enabled(name: &str) -> bool {
    MUTATION.lock().unwrap_or_else(|e| e.into_inner()).is_some_and(|m| m == name)
}

/// Whether the named seeded bug is active. Always `false` outside model
/// builds, so guarded re-checks compile to their unconditional form.
#[cfg(not(vertexica_model))]
#[inline(always)]
pub fn mutation_enabled(_name: &str) -> bool {
    false
}

// ---------------------------------------------------------------------------
// Exploration driver.
// ---------------------------------------------------------------------------

static RUN_LOCK: OsMutex<()> = OsMutex::new(());
static QUIET_HOOK: Once = Once::new();

/// Silences panic output from logical model threads (expected during
/// exploration and abort teardown) while leaving all other threads' panics
/// on the default hook. Installed once per process.
fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !in_model() {
                prev(info);
            }
        }));
    });
}

struct RunReport {
    violation: Option<(ViolationKind, String)>,
    path: Vec<Decision>,
    preemptions: usize,
    steps: usize,
    ops: BTreeSet<&'static str>,
}

fn run_one<F: Fn()>(cfg: &Config, path: Vec<Decision>, scenario: &F) -> RunReport {
    let exec = Arc::new(Execution {
        inner: OsMutex::new(ExecInner {
            seed: cfg.seed,
            max_preemptions: cfg.max_preemptions,
            max_steps: cfg.max_steps,
            timeout_wakes: cfg.timeout_wakes,
            threads: vec![ThreadState {
                status: Status::Runnable,
                depri: false,
                timed_out: false,
                timeout_budget: cfg.timeout_wakes,
            }],
            current: 0,
            live: 1,
            steps: 0,
            preemptions: 0,
            path,
            cursor: 0,
            mutexes: HashMap::new(),
            rws: HashMap::new(),
            aborted: false,
            done: false,
            violation: None,
            ops: BTreeSet::new(),
            handles: Vec::new(),
        }),
        cv: OsCondvar::new(),
    });
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), 0)));
    let r = panic::catch_unwind(AssertUnwindSafe(scenario));
    CTX.with(|c| *c.borrow_mut() = None);
    exec.finish_thread(0, r.err());
    {
        let mut g = exec.lock();
        while !g.done {
            g = exec.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
    let handles: Vec<_> = exec.lock().handles.drain(..).collect();
    for h in handles {
        let _ = h.join();
    }
    let inner = Arc::try_unwrap(exec)
        .unwrap_or_else(|_| panic!("model threads still hold the execution"))
        .inner
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    RunReport {
        violation: inner.violation,
        path: inner.path,
        preemptions: inner.preemptions,
        steps: inner.steps,
        ops: inner.ops,
    }
}

/// Advances the decision path to the next schedule in DFS order.
/// Returns `false` when the bounded space is exhausted.
fn advance(path: &mut Vec<Decision>) -> bool {
    while let Some(d) = path.last() {
        if d.rank + 1 < d.n {
            path.last_mut().expect("nonempty").rank += 1;
            return true;
        }
        path.pop();
    }
    false
}

/// Shrinks a failing path by zeroing nonzero ranks (earliest first) and
/// truncating the suffix, keeping any change that still fails. The default
/// rank-0 extension prefers staying on the current thread, so the fixpoint
/// is a minimal-preemption reproduction.
fn shrink<F: Fn()>(cfg: &Config, scenario: &F, first: RunReport) -> RunReport {
    let mut best = first;
    let mut trials = 0usize;
    loop {
        let mut improved = false;
        for i in 0..best.path.len() {
            if best.path[i].rank == 0 {
                continue;
            }
            let mut trial: Vec<Decision> = best.path[..=i].to_vec();
            trial[i].rank = 0;
            trials += 1;
            if trials > 512 {
                return best;
            }
            let rep = run_one(cfg, trial, scenario);
            if rep.violation.is_some() {
                best = rep;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Explores the scenario's bounded interleaving space.
///
/// Returns [`Stats`] if every explored schedule ran to completion with no
/// deadlock, livelock, or panic; otherwise returns the shrunk [`Violation`].
/// Checks are serialized process-wide (one exploration at a time) so the
/// mutation registry and scheduler state never interleave between tests.
pub fn check<F: Fn()>(cfg: &Config, scenario: F) -> Result<Stats, Box<Violation>> {
    let _run = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    install_quiet_hook();
    *MUTATION.lock().unwrap_or_else(|e| e.into_inner()) = cfg.mutation;
    let mut stats = Stats { preemption_bound: cfg.max_preemptions, ..Stats::default() };
    let mut path: Vec<Decision> = Vec::new();
    let mut failure: Option<Box<Violation>> = None;
    loop {
        let rep = run_one(cfg, std::mem::take(&mut path), &scenario);
        stats.schedules += 1;
        stats.max_decision_depth = stats.max_decision_depth.max(rep.path.len());
        stats.max_steps_seen = stats.max_steps_seen.max(rep.steps);
        stats.ops.extend(rep.ops.iter().copied());
        if rep.violation.is_some() {
            let best = shrink(cfg, &scenario, rep);
            let (kind, message) = best.violation.clone().expect("shrink keeps a violation");
            failure = Some(Box::new(Violation {
                kind,
                message,
                schedule: best
                    .path
                    .iter()
                    .enumerate()
                    .map(|(index, d)| ScheduleStep {
                        index,
                        thread: d.chosen,
                        op: d.op,
                        preemptive: d.preemptive,
                    })
                    .collect(),
                preemptions: best.preemptions,
                schedules_explored: stats.schedules,
                seed: cfg.seed,
            }));
            break;
        }
        path = rep.path;
        if !advance(&mut path) {
            stats.exhausted = true;
            break;
        }
        if stats.schedules >= cfg.max_schedules {
            break;
        }
    }
    *MUTATION.lock().unwrap_or_else(|e| e.into_inner()) = None;
    match failure {
        Some(v) => Err(v),
        None => Ok(stats),
    }
}

#[cfg(test)]
mod tests {
    //! Toy-model tests for the checker itself. These use the instrumented
    //! primitives directly (not the cfg-switched façade) so they run — and
    //! keep the executor honest — in ordinary tier-1 builds too.

    use super::super::instrumented::{AtomicBool, AtomicUsize, Condvar, Mutex};
    use super::*;
    use std::sync::atomic::Ordering as O;
    use std::sync::Arc;

    fn cfg(max_preemptions: usize, max_steps: usize) -> Config {
        Config { max_preemptions, max_steps, max_schedules: 20_000, ..Config::default() }
    }

    /// Two lock-protected increments: every schedule must see the final
    /// count, and the bounded space must exhaust cleanly.
    #[test]
    fn clean_locked_counter_exhausts() {
        let stats = check(&cfg(2, 2_000), || {
            let n = Arc::new(Mutex::new(0u64));
            let ts: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    spawn(move || *n.lock() += 1)
                })
                .collect();
            for t in ts {
                t.join();
            }
            assert_eq!(*n.lock(), 2);
        })
        .expect("clean protocol must verify");
        assert!(stats.exhausted, "space should exhaust: {stats:?}");
        assert!(stats.schedules > 1, "must explore more than one schedule");
        assert!(stats.ops.contains("mutex.lock") && stats.ops.contains("mutex.unlock"));
    }

    fn racy_increment_scenario() {
        let n = Arc::new(AtomicUsize::new(0));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                spawn(move || {
                    // Deliberate non-atomic read-modify-write.
                    let v = n.load(O::SeqCst);
                    n.store(v + 1, O::SeqCst);
                })
            })
            .collect();
        for t in ts {
            t.join();
        }
        assert_eq!(n.load(O::SeqCst), 2, "lost update");
    }

    /// The seeded-bad-interleaving satellite: a two-thread lost update needs
    /// exactly one preemption; the checker must find it, shrink to that
    /// minimal schedule, and do so deterministically (same seed → same
    /// minimal schedule).
    #[test]
    fn racy_counter_shrinks_to_minimal_schedule() {
        let c = cfg(3, 2_000);
        let v1 = check(&c, racy_increment_scenario).expect_err("lost update must be found");
        assert_eq!(v1.kind, ViolationKind::Panic);
        assert!(v1.message.contains("lost update"), "unexpected message: {}", v1.message);
        assert_eq!(v1.preemptions, 1, "minimal schedule needs exactly one preemption:\n{v1}");
        let v2 = check(&c, racy_increment_scenario).expect_err("same seed must refail");
        assert_eq!(v1.schedule, v2.schedule, "shrunk schedule must be deterministic");
        assert_eq!(v1.schedules_explored, v2.schedules_explored);
    }

    /// Classic AB/BA lock-order inversion must be reported as a deadlock.
    #[test]
    fn lock_order_inversion_deadlocks() {
        let v = check(&cfg(2, 2_000), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
            let t2 = spawn(move || {
                let _gb = b3.lock();
                let _ga = a3.lock();
            });
            t1.join();
            t2.join();
        })
        .expect_err("AB/BA must deadlock under some schedule");
        assert_eq!(v.kind, ViolationKind::Deadlock);
        assert!(v.message.contains("deadlock"), "message: {}", v.message);
    }

    /// A spin loop that can never make progress must trip the step budget.
    #[test]
    fn unserviceable_spin_is_livelock() {
        let v = check(&cfg(1, 200), || {
            let flag = Arc::new(AtomicBool::new(false));
            let f2 = Arc::clone(&flag);
            let t = spawn(move || {
                while !f2.load(O::SeqCst) {
                    yield_now();
                }
            });
            t.join();
        })
        .expect_err("spin on a never-set flag must be flagged");
        assert_eq!(v.kind, ViolationKind::Livelock);
    }

    /// Timed condvar waits fire at quiescence: a waiter whose notify never
    /// comes still completes via its modeled timeout.
    #[test]
    fn timed_wait_times_out_at_quiescence() {
        let stats = check(&cfg(2, 2_000), || {
            let m = Arc::new(Mutex::new(()));
            let cv = Arc::new(Condvar::new());
            let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
            let t = spawn(move || {
                let g = m2.lock();
                let (_g, timed_out) = cv2.wait_timeout(g, std::time::Duration::from_millis(50));
                assert!(timed_out, "no notifier exists; wake must be a timeout");
            });
            t.join();
        })
        .expect("timed wait must not deadlock");
        assert!(stats.exhausted);
        assert!(stats.ops.contains("cond.wait"));
    }

    /// A proper flag+condvar handshake (untimed) verifies cleanly and the
    /// executor intercepts the wait/notify pair.
    #[test]
    fn condvar_handshake_is_clean() {
        let stats = check(&cfg(2, 2_000), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let waiter = spawn(move || {
                let (m, cv) = &*p2;
                let mut g = m.lock();
                while !*g {
                    g = cv.wait(g);
                }
            });
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
            waiter.join();
        })
        .expect("handshake must verify");
        assert!(stats.exhausted);
        assert!(stats.ops.contains("cond.notify_all"));
    }
}
