//! The workspace's single synchronization seam.
//!
//! Every crate outside `crates/shims/` uses locks, condvars, atomics, and
//! fences exclusively through this module (enforced by `tools/vxlint` rule
//! `sync-seam`). That gives the workspace exactly one instrumentation point:
//!
//! * In **normal builds** (`cfg(not(vertexica_model))`) the façade is pure
//!   re-export — [`Mutex`]/[`RwLock`] are the `parking_lot` shim types,
//!   guards and atomics are the `std::sync` types, and [`Condvar`] is a
//!   `#[repr(transparent)]`-thin wrapper adding the consume-style guard API.
//!   There is no wrapper state and no branch on any hot path.
//! * Under **`--cfg vertexica_model`** the same names resolve to the
//!   [`instrumented`] types, which report every operation to the [`model`]
//!   checker as a schedule point (and pass straight through to the real
//!   primitives on threads outside a model execution).
//!
//! The [`model`] and [`instrumented`] submodules themselves are always
//! compiled (so the checker's own tests run in tier-1); only which types the
//! façade names is switched by the cfg.

pub mod instrumented;
pub mod model;

#[cfg(not(vertexica_model))]
mod facade {
    pub use parking_lot::{Mutex, RwLock};
    pub use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicU8, AtomicUsize};
    pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

    /// An instrumented-API-compatible condition variable.
    ///
    /// Thin wrapper over `std::sync::Condvar` with a consume-style guard API
    /// (`wait(guard) -> guard`) that ignores lock poisoning, matching the
    /// panic-free guarantees of the `parking_lot` shim locks. The model-mode
    /// type in [`super::instrumented`] has the same surface.
    #[derive(Debug, Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        /// Creates a new condition variable.
        pub const fn new() -> Self {
            Condvar(std::sync::Condvar::new())
        }

        /// Atomically releases `guard`'s mutex and waits for a notification,
        /// reacquiring the mutex before returning.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
        }

        /// Like [`Condvar::wait`] with a timeout; the boolean is `true` if
        /// the wait timed out.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            timeout: std::time::Duration,
        ) -> (MutexGuard<'a, T>, bool) {
            let (g, res) = self.0.wait_timeout(guard, timeout).unwrap_or_else(|e| e.into_inner());
            (g, res.timed_out())
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        /// Wakes all waiters.
        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }
}

#[cfg(vertexica_model)]
mod facade {
    pub use super::instrumented::{
        fence, AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Condvar, Mutex, MutexGuard, RwLock,
        RwLockReadGuard, RwLockWriteGuard,
    };
}

pub use facade::*;

/// Memory-ordering constraints for atomic operations (re-exported from
/// `std::sync::atomic`; orderings are not reinterpreted by the model, which
/// explores sequentially-consistent interleavings).
pub use std::sync::atomic::Ordering;

/// An atomic pointer, routed through the seam.
///
/// Normal builds alias `std::sync::atomic::AtomicPtr`; model builds use the
/// instrumented type.
#[cfg(not(vertexica_model))]
pub type AtomicPtr<T> = std::sync::atomic::AtomicPtr<T>;

/// An atomic pointer, routed through the seam (model-instrumented).
#[cfg(vertexica_model)]
pub type AtomicPtr<T> = instrumented::AtomicPtr<T>;

#[cfg(test)]
mod tests {
    //! Seam-shape tests: the façade must be zero-cost delegation in normal
    //! builds (literally the shim/std types) and the instrumented surface
    //! must be call-compatible in both modes.

    use super::*;
    use std::time::Duration;

    /// In normal builds the façade types ARE the shim/std types: these
    /// identity functions only compile if the aliases are exact re-exports
    /// (no wrapper, no cost).
    #[cfg(not(vertexica_model))]
    #[test]
    fn facade_is_zero_cost_reexport() {
        fn mutex_is_shim(m: Mutex<u8>) -> parking_lot::Mutex<u8> {
            m
        }
        fn rwlock_is_shim(l: RwLock<u8>) -> parking_lot::RwLock<u8> {
            l
        }
        fn atomic_is_std(a: AtomicU64) -> std::sync::atomic::AtomicU64 {
            a
        }
        fn ordering_is_std(o: Ordering) -> std::sync::atomic::Ordering {
            o
        }
        fn guard_is_std<'a>(g: MutexGuard<'a, u8>) -> std::sync::MutexGuard<'a, u8> {
            g
        }
        assert_eq!(*mutex_is_shim(Mutex::new(7)).lock(), 7);
        assert_eq!(rwlock_is_shim(RwLock::new(7)).into_inner(), 7);
        assert_eq!(atomic_is_std(AtomicU64::new(7)).into_inner(), 7);
        assert_eq!(ordering_is_std(Ordering::SeqCst), std::sync::atomic::Ordering::SeqCst);
        let m = Mutex::new(9u8);
        assert_eq!(*guard_is_std(m.lock()), 9);
        // The Condvar wrapper adds no state over std's.
        assert_eq!(std::mem::size_of::<Condvar>(), std::mem::size_of::<std::sync::Condvar>());
    }

    /// The façade surface behaves identically in both cfg modes (outside a
    /// model execution the instrumented types pass straight through).
    #[test]
    fn facade_smoke_both_modes() {
        let m = Mutex::new(0u64);
        *m.lock() += 1;
        assert!(m.try_lock().is_some());
        assert_eq!(*m.lock(), 1);

        let l = RwLock::new(5u64);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);

        let a = AtomicU64::new(0);
        a.store(3, Ordering::SeqCst);
        assert_eq!(a.fetch_add(1, Ordering::SeqCst), 3);
        assert_eq!(a.load(Ordering::SeqCst), 4);
        let b = AtomicBool::new(false);
        assert!(!b.swap(true, Ordering::SeqCst));
        let u = AtomicUsize::new(1);
        assert_eq!(u.fetch_sub(1, Ordering::SeqCst), 1);
        let v = AtomicU8::new(1);
        assert_eq!(v.load(Ordering::Relaxed), 1);
        fence(Ordering::SeqCst);

        // Condvar wait_timeout: no notifier, must time out and hand the
        // (still-consistent) guard back.
        let cv = Condvar::new();
        let g = m.lock();
        let (g, timed_out) = cv.wait_timeout(g, Duration::from_millis(1));
        assert!(timed_out);
        assert_eq!(*g, 1);
        drop(g);

        // Condvar notify path: a waiter observes the flag flip.
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lk, cv) = &*pair2;
            let mut done = lk.lock();
            while !*done {
                done = cv.wait(done);
            }
        });
        {
            let (lk, cv) = &*pair;
            *lk.lock() = true;
            cv.notify_all();
        }
        t.join().expect("waiter thread");
    }
}
