//! FxHash-style hashing and deterministic pseudo-random utilities.
//!
//! Integer-keyed hash maps (vertex ids, column dictionaries, join keys) are on
//! the hot path of every engine in this workspace. SipHash's DoS resistance is
//! irrelevant here, so we use the multiply-rotate hash popularized by rustc
//! (`FxHasher`). Hand-rolled because `rustc-hash` is not on the sanctioned
//! dependency list.

use std::hash::{BuildHasherDefault, Hasher};

/// A fast, non-cryptographic hasher (the rustc `FxHasher` algorithm).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// One step of the splitmix64 generator; returns the next state and an output.
///
/// Used wherever deterministic, seedable pseudo-randomness is needed without a
/// `rand` dependency (e.g. collaborative-filtering latent-vector init keyed by
/// vertex id, hash partitioner mixing).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mix a single 64-bit value into a well-distributed hash (stateless).
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut s = x;
    splitmix64(&mut s)
}

/// Deterministic f64 in `[0, 1)` derived from a seed (e.g. a vertex id).
#[inline]
pub fn unit_f64(seed: u64) -> f64 {
    (mix64(seed) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fxhash_map_basic() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
    }

    #[test]
    fn fxhash_distinguishes_similar_keys() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        let h1 = b.hash_one(1u64);
        let h2 = b.hash_one(2u64);
        assert_ne!(h1, h2);
    }

    #[test]
    fn fxhash_handles_unaligned_bytes() {
        use std::hash::Hasher;
        let mut h1 = FxHasher::default();
        h1.write(b"hello");
        let mut h2 = FxHasher::default();
        h2.write(b"hellp");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_eq!(a, b);
    }

    #[test]
    fn unit_f64_in_range() {
        for seed in 0..10_000u64 {
            let v = unit_f64(seed);
            assert!((0.0..1.0).contains(&v), "seed {seed} gave {v}");
        }
    }

    #[test]
    fn unit_f64_roughly_uniform() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(unit_f64).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }
}
