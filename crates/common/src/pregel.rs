//! The vertex-centric programming API ("think like a vertex").
//!
//! This mirrors the Pregel API that the paper exposes on top of SQL
//! (§2.1–§2.2): programmers supply a *vertex compute function*; the engine is
//! responsible for superstep scheduling, message delivery and halting. The
//! worker exposes `getVertexValue()`, `getMessages()`, `getOutEdges()`,
//! `modifyVertexValue()`, `sendMessage()` and `voteToHalt()` — here these are
//! methods on [`VertexContext`].
//!
//! The same [`VertexProgram`] implementation runs on:
//!
//! * `vertexica` — the relational engine (coordinator stored-procedure plus
//!   worker UDFs over vertex/edge/message tables),
//! * `vertexica-giraph` — the in-memory BSP baseline,
//! * `vertexica-algorithms::reference` — straight-line in-memory loops used to
//!   validate both.

use crate::codec::VertexData;
use crate::graph::{Edge, VertexId};

/// Semantics of a global aggregator (Pregel-style).
///
/// Aggregator values written in superstep `S` are visible to all vertices in
/// superstep `S + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Sum of contributions.
    Sum,
    /// Minimum contribution.
    Min,
    /// Maximum contribution.
    Max,
}

impl AggKind {
    /// Identity element for the aggregation.
    pub fn identity(self) -> f64 {
        match self {
            AggKind::Sum => 0.0,
            AggKind::Min => f64::INFINITY,
            AggKind::Max => f64::NEG_INFINITY,
        }
    }

    /// Combines two partial aggregates.
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            AggKind::Sum => a + b,
            AggKind::Min => a.min(b),
            AggKind::Max => a.max(b),
        }
    }
}

/// Declaration of a global aggregator used by a program.
#[derive(Debug, Clone)]
pub struct AggregatorSpec {
    /// Aggregator name, referenced from `VertexContext::aggregate`.
    pub name: &'static str,
    /// Fold semantics.
    pub kind: AggKind,
}

/// Read-only information available when a vertex value is initialized
/// (superstep "-1", before the first compute call).
#[derive(Debug, Clone, Copy)]
pub struct InitContext {
    /// Total vertices in the graph.
    pub num_vertices: u64,
    /// The vertex's out-degree.
    pub out_degree: u64,
}

/// The per-vertex view of the engine during `compute`.
///
/// Object-safe so engines can hand programs a `&mut dyn VertexContext<V, M>`.
pub trait VertexContext<V, M> {
    /// Id of the vertex being computed.
    fn vertex_id(&self) -> VertexId;
    /// Current superstep, starting at 0.
    fn superstep(&self) -> u64;
    /// Total number of vertices in the graph.
    fn num_vertices(&self) -> u64;
    /// Current value of this vertex (paper: `getVertexValue()`).
    fn value(&self) -> &V;
    /// Replaces the value of this vertex (paper: `modifyVertexValue()`).
    fn set_value(&mut self, value: V);
    /// Outgoing edges of this vertex (paper: `getOutEdges()`).
    fn out_edges(&self) -> &[Edge];
    /// Sends `msg` to vertex `to`, delivered next superstep (paper:
    /// `sendMessage()`).
    fn send_message(&mut self, to: VertexId, msg: M);
    /// Halts this vertex; it stays inactive until a message re-activates it
    /// (paper: `voteToHalt()`).
    fn vote_to_halt(&mut self);
    /// Contributes `value` to the named global aggregator for this superstep.
    fn aggregate(&mut self, name: &str, value: f64);
    /// Reads the named aggregator value from the *previous* superstep.
    fn read_aggregate(&self, name: &str) -> Option<f64>;
}

/// Convenience helpers layered over the object-safe core API.
pub trait VertexContextExt<V, M: Clone>: VertexContext<V, M> {
    /// Sends `msg` to every out-neighbour.
    fn send_to_all_neighbors(&mut self, msg: M) {
        let targets: Vec<VertexId> = self.out_edges().iter().map(|e| e.dst).collect();
        for t in targets {
            self.send_message(t, msg.clone());
        }
    }

    /// Out-degree of this vertex.
    fn out_degree(&self) -> usize {
        self.out_edges().len()
    }
}

impl<V, M: Clone, C: VertexContext<V, M> + ?Sized> VertexContextExt<V, M> for C {}

/// A user-supplied vertex program (the paper's "vertex computation", §2.2).
///
/// The engine calls [`VertexProgram::compute`] once per superstep for every
/// *active* vertex. A vertex is active in superstep 0, and in later supersteps
/// iff it received a message or has not voted to halt. The computation
/// terminates when every vertex has halted and no messages are in flight, or
/// when [`VertexProgram::max_supersteps`] is reached.
pub trait VertexProgram: Send + Sync {
    /// Per-vertex state type, stored in the relational vertex table.
    type Value: VertexData + Clone + Send + Sync;
    /// Message type, stored in the relational message table.
    type Message: VertexData + Clone + Send + Sync;

    /// Produces the initial value of a vertex.
    fn initial_value(&self, id: VertexId, init: &InitContext) -> Self::Value;

    /// The vertex compute function.
    fn compute(
        &self,
        ctx: &mut dyn VertexContext<Self::Value, Self::Message>,
        messages: &[Self::Message],
    );

    /// Optional associative/commutative message combiner. When supplied,
    /// engines may fold messages addressed to the same vertex eagerly,
    /// shrinking the message table / message queues.
    fn combine(&self, _a: &Self::Message, _b: &Self::Message) -> Option<Self::Message> {
        None
    }

    /// Global aggregators this program uses.
    fn aggregators(&self) -> Vec<AggregatorSpec> {
        Vec::new()
    }

    /// Upper bound on supersteps (safety net; `u64::MAX` = run to fixpoint).
    fn max_supersteps(&self) -> u64 {
        u64::MAX
    }

    /// Human-readable name used by harnesses and logs.
    fn name(&self) -> &'static str {
        "vertex-program"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_kind_identities() {
        assert_eq!(AggKind::Sum.identity(), 0.0);
        assert_eq!(AggKind::Min.identity(), f64::INFINITY);
        assert_eq!(AggKind::Max.identity(), f64::NEG_INFINITY);
    }

    #[test]
    fn agg_kind_combines() {
        assert_eq!(AggKind::Sum.combine(2.0, 3.0), 5.0);
        assert_eq!(AggKind::Min.combine(2.0, 3.0), 2.0);
        assert_eq!(AggKind::Max.combine(2.0, 3.0), 3.0);
    }

    #[test]
    fn combining_with_identity_is_neutral() {
        for kind in [AggKind::Sum, AggKind::Min, AggKind::Max] {
            assert_eq!(kind.combine(kind.identity(), 7.5), 7.5);
        }
    }

    /// A minimal in-test context to exercise the ext trait's default methods.
    struct TestCtx {
        edges: Vec<Edge>,
        sent: Vec<(VertexId, f64)>,
        halted: bool,
        value: f64,
    }

    impl VertexContext<f64, f64> for TestCtx {
        fn vertex_id(&self) -> VertexId {
            0
        }
        fn superstep(&self) -> u64 {
            0
        }
        fn num_vertices(&self) -> u64 {
            3
        }
        fn value(&self) -> &f64 {
            &self.value
        }
        fn set_value(&mut self, value: f64) {
            self.value = value;
        }
        fn out_edges(&self) -> &[Edge] {
            &self.edges
        }
        fn send_message(&mut self, to: VertexId, msg: f64) {
            self.sent.push((to, msg));
        }
        fn vote_to_halt(&mut self) {
            self.halted = true;
        }
        fn aggregate(&mut self, _name: &str, _value: f64) {}
        fn read_aggregate(&self, _name: &str) -> Option<f64> {
            None
        }
    }

    #[test]
    fn send_to_all_neighbors_fans_out() {
        let mut ctx = TestCtx {
            edges: vec![Edge::new(0, 1), Edge::new(0, 2)],
            sent: vec![],
            halted: false,
            value: 0.0,
        };
        ctx.send_to_all_neighbors(1.5);
        assert_eq!(ctx.sent, vec![(1, 1.5), (2, 1.5)]);
        assert_eq!(ctx.out_degree(), 2);
    }
}
