//! Wall-clock timing helpers shared by the benchmark harness and engines.

use std::time::{Duration, Instant};

/// A simple stopwatch.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Time elapsed since the (re)start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Returns the elapsed time and restarts the clock.
    pub fn restart(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn timed_returns_value() {
        let (v, d) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0 || d.as_nanos() == 0); // non-negative by type
    }

    #[test]
    fn restart_resets() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(1));
        let first = sw.restart();
        assert!(first >= Duration::from_millis(1));
        assert!(sw.elapsed() < first + Duration::from_millis(50));
    }
}
