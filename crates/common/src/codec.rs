//! Value codecs for vertex and message payloads.
//!
//! Vertexica stores vertex values and message values in relational
//! `VARBINARY` columns; the Giraph baseline serializes messages between
//! partitions (mirroring Hadoop `Writable`s). [`VertexData`] is the single
//! encoding contract both use, so a `VertexProgram` runs unchanged on either
//! engine.
//!
//! Encodings are little-endian and self-delimiting only where necessary
//! (strings and vectors carry a length prefix).

use bytes::{Buf, BufMut};

/// A value that can round-trip through a byte buffer.
pub trait VertexData: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes a value from the front of `buf`, advancing it.
    /// Returns `None` on malformed input.
    fn decode(buf: &mut &[u8]) -> Option<Self>;

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Convenience: decode from a complete buffer, requiring full consumption.
    fn from_bytes(mut buf: &[u8]) -> Option<Self> {
        let v = Self::decode(&mut buf)?;
        if buf.is_empty() {
            Some(v)
        } else {
            None
        }
    }
}

impl VertexData for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_f64_le(*self);
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.len() < 8 {
            return None;
        }
        Some(buf.get_f64_le())
    }
}

impl VertexData for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u64_le(*self);
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.len() < 8 {
            return None;
        }
        Some(buf.get_u64_le())
    }
}

impl VertexData for i64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_i64_le(*self);
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.len() < 8 {
            return None;
        }
        Some(buf.get_i64_le())
    }
}

impl VertexData for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u32_le(*self);
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.len() < 4 {
            return None;
        }
        Some(buf.get_u32_le())
    }
}

impl VertexData for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u8(*self as u8);
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.is_empty() {
            return None;
        }
        match buf.get_u8() {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl VertexData for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}

    fn decode(_buf: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl VertexData for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u32_le(self.len() as u32);
        buf.extend_from_slice(self.as_bytes());
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.len() < 4 {
            return None;
        }
        let len = buf.get_u32_le() as usize;
        if buf.len() < len {
            return None;
        }
        let s = String::from_utf8(buf[..len].to_vec()).ok()?;
        buf.advance(len);
        Some(s)
    }
}

impl<T: VertexData> VertexData for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u32_le(self.len() as u32);
        for item in self {
            item.encode(buf);
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.len() < 4 {
            return None;
        }
        let len = buf.get_u32_le() as usize;
        // Guard against absurd length prefixes on malformed input.
        if len > buf.len().saturating_mul(8).saturating_add(1) {
            return None;
        }
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Some(out)
    }
}

impl<A: VertexData, B: VertexData> VertexData for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let a = A::decode(buf)?;
        let b = B::decode(buf)?;
        Some((a, b))
    }
}

impl<A: VertexData, B: VertexData, C: VertexData> VertexData for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let a = A::decode(buf)?;
        let b = B::decode(buf)?;
        let c = C::decode(buf)?;
        Some((a, b, c))
    }
}

impl<T: VertexData> VertexData for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.is_empty() {
            return None;
        }
        match buf.get_u8() {
            0 => Some(None),
            1 => Some(Some(T::decode(buf)?)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: VertexData + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(3.25f64);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(7u32);
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
    }

    #[test]
    fn strings_roundtrip() {
        roundtrip(String::new());
        roundtrip("hello vertexica".to_string());
        roundtrip("ünïcode ✓".to_string());
    }

    #[test]
    fn vectors_roundtrip() {
        roundtrip(Vec::<f64>::new());
        roundtrip(vec![1.0f64, 2.0, 3.0]);
        roundtrip(vec![vec![1u64, 2], vec![], vec![3]]);
    }

    #[test]
    fn tuples_roundtrip() {
        roundtrip((1.5f64, 2u64));
        roundtrip((1u64, "x".to_string(), vec![0.5f64]));
    }

    #[test]
    fn options_roundtrip() {
        roundtrip(Option::<f64>::None);
        roundtrip(Some(9.75f64));
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut bytes = 1.0f64.to_bytes();
        bytes.push(0xFF);
        assert!(f64::from_bytes(&bytes).is_none());
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = "hello".to_string().to_bytes();
        assert!(String::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(f64::from_bytes(&[0u8; 4]).is_none());
    }

    #[test]
    fn decode_rejects_bogus_length_prefix() {
        // Length prefix claims u32::MAX elements but provides none.
        let bytes = u32::MAX.to_le_bytes().to_vec();
        assert!(Vec::<u64>::from_bytes(&bytes).is_none());
    }

    #[test]
    fn bool_rejects_invalid_tag() {
        assert!(bool::from_bytes(&[2]).is_none());
    }
}
