//! Graph model: vertex ids, weighted edges, edge lists, CSR adjacency.
//!
//! The paper stores graphs in relational tables; engines outside the relational
//! core (the Giraph baseline, the graph-database baseline, the reference
//! implementations) consume the same logical graph through [`EdgeList`] /
//! [`Adjacency`], so every Figure-2 contender analyses an identical input.

use crate::hash::FxHashSet;

/// Vertex identifier. SNAP datasets and the paper's schema use 64-bit ids.
pub type VertexId = u64;

/// A directed, weighted edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (1.0 for unweighted loads).
    pub weight: f64,
}

impl Edge {
    /// An edge with the default weight of 1.0.
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst, weight: 1.0 }
    }

    /// An edge with an explicit weight.
    pub fn weighted(src: VertexId, dst: VertexId, weight: f64) -> Self {
        Edge { src, dst, weight }
    }
}

/// A graph as a flat list of directed edges over vertices `0..num_vertices`.
#[derive(Debug, Clone, Default)]
pub struct EdgeList {
    /// Number of vertices; ids run `0..num_vertices`.
    pub num_vertices: u64,
    /// The directed edges.
    pub edges: Vec<Edge>,
}

impl EdgeList {
    /// An edge list over `0..num_vertices` with the given edges.
    pub fn new(num_vertices: u64, edges: Vec<Edge>) -> Self {
        EdgeList { num_vertices, edges }
    }

    /// Builds an edge list from `(src, dst)` pairs, inferring the vertex count
    /// as `max id + 1`.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        let edges: Vec<Edge> = pairs.into_iter().map(|(s, d)| Edge::new(s, d)).collect();
        let num_vertices = edges.iter().map(|e| e.src.max(e.dst) + 1).max().unwrap_or(0);
        EdgeList { num_vertices, edges }
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Returns a copy with every edge mirrored (makes a directed graph
    /// undirected). Self-loops are not duplicated.
    pub fn undirected(&self) -> EdgeList {
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        for e in &self.edges {
            edges.push(*e);
            if e.src != e.dst {
                edges.push(Edge::weighted(e.dst, e.src, e.weight));
            }
        }
        EdgeList { num_vertices: self.num_vertices, edges }
    }

    /// Removes duplicate `(src, dst)` pairs, keeping the first occurrence.
    pub fn dedup(&self) -> EdgeList {
        let mut seen: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
        let edges: Vec<Edge> =
            self.edges.iter().filter(|e| seen.insert((e.src, e.dst))).copied().collect();
        EdgeList { num_vertices: self.num_vertices, edges }
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.num_vertices as usize];
        for e in &self.edges {
            deg[e.src as usize] += 1;
        }
        deg
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.num_vertices as usize];
        for e in &self.edges {
            deg[e.dst as usize] += 1;
        }
        deg
    }
}

/// Compressed sparse row adjacency: out-neighbours of vertex `v` are
/// `targets[offsets[v]..offsets[v + 1]]`.
#[derive(Debug, Clone)]
pub struct Adjacency {
    /// Number of vertices; ids run `0..num_vertices`.
    pub num_vertices: u64,
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Vec<f64>,
}

impl Adjacency {
    /// Builds the CSR representation from a flat edge list.
    pub fn from_edge_list(g: &EdgeList) -> Self {
        let n = g.num_vertices as usize;
        let mut counts = vec![0usize; n + 1];
        for e in &g.edges {
            counts[e.src as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; g.edges.len()];
        let mut weights = vec![0f64; g.edges.len()];
        for e in &g.edges {
            let pos = cursor[e.src as usize];
            targets[pos] = e.dst;
            weights[pos] = e.weight;
            cursor[e.src as usize] += 1;
        }
        Adjacency { num_vertices: g.num_vertices, offsets, targets, weights }
    }

    /// Out-neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Weights of `v`'s out-edges, parallel to [`Adjacency::neighbors`].
    #[inline]
    pub fn neighbor_weights(&self, v: VertexId) -> &[f64] {
        let v = v as usize;
        &self.weights[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> EdgeList {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        EdgeList::from_pairs([(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn from_pairs_infers_vertex_count() {
        let g = diamond();
        assert_eq!(g.num_vertices, 4);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn empty_edge_list() {
        let g = EdgeList::from_pairs(std::iter::empty());
        assert_eq!(g.num_vertices, 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degrees(), vec![2, 1, 1, 0]);
        assert_eq!(g.in_degrees(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn undirected_doubles_edges() {
        let g = diamond().undirected();
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.out_degrees(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn undirected_keeps_single_self_loop() {
        let g = EdgeList::from_pairs([(0, 0), (0, 1)]).undirected();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn dedup_removes_duplicates() {
        let g = EdgeList::from_pairs([(0, 1), (0, 1), (1, 2)]).dedup();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn csr_adjacency_matches_edge_list() {
        let g = diamond();
        let adj = Adjacency::from_edge_list(&g);
        assert_eq!(adj.neighbors(0), &[1, 2]);
        assert_eq!(adj.neighbors(1), &[3]);
        assert_eq!(adj.neighbors(2), &[3]);
        assert_eq!(adj.neighbors(3), &[] as &[VertexId]);
        assert_eq!(adj.out_degree(0), 2);
        assert_eq!(adj.num_edges(), 4);
    }

    #[test]
    fn csr_preserves_weights() {
        let g = EdgeList::new(2, vec![Edge::weighted(0, 1, 2.5), Edge::weighted(1, 0, 0.5)]);
        let adj = Adjacency::from_edge_list(&g);
        assert_eq!(adj.neighbor_weights(0), &[2.5]);
        assert_eq!(adj.neighbor_weights(1), &[0.5]);
    }
}
