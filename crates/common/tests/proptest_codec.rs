//! Property-based tests for the shared codecs and graph model.

use proptest::prelude::*;
use vertexica_common::codec::VertexData;
use vertexica_common::graph::{Adjacency, Edge, EdgeList};
use vertexica_common::hash::{mix64, unit_f64};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn f64_roundtrip(v in any::<f64>()) {
        let back = f64::from_bytes(&v.to_bytes()).unwrap();
        // NaN-safe bit comparison.
        prop_assert_eq!(v.to_bits(), back.to_bits());
    }

    #[test]
    fn ints_roundtrip(a in any::<u64>(), b in any::<i64>(), c in any::<u32>()) {
        prop_assert_eq!(u64::from_bytes(&a.to_bytes()), Some(a));
        prop_assert_eq!(i64::from_bytes(&b.to_bytes()), Some(b));
        prop_assert_eq!(u32::from_bytes(&c.to_bytes()), Some(c));
    }

    #[test]
    fn strings_and_vectors_roundtrip(s in ".{0,40}", v in proptest::collection::vec(any::<f64>(), 0..32)) {
        prop_assert_eq!(String::from_bytes(&s.clone().to_bytes()), Some(s));
        let back = Vec::<f64>::from_bytes(&v.to_bytes()).unwrap();
        prop_assert_eq!(v.len(), back.len());
        for (x, y) in v.iter().zip(&back) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn tuples_roundtrip(id in any::<u64>(), v in proptest::collection::vec(-1e9f64..1e9, 0..16)) {
        let msg = (id, v);
        prop_assert_eq!(<(u64, Vec<f64>)>::from_bytes(&msg.to_bytes()), Some(msg));
    }

    /// Decoding arbitrary garbage never panics (it may legitimately succeed
    /// for fixed-width types).
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = f64::from_bytes(&bytes);
        let _ = String::from_bytes(&bytes);
        let _ = Vec::<f64>::from_bytes(&bytes);
        let _ = <(u64, Vec<f64>)>::from_bytes(&bytes);
        let _ = bool::from_bytes(&bytes);
        let _ = Option::<f64>::from_bytes(&bytes);
    }

    /// Truncating any valid encoding makes decoding fail (prefix-freeness
    /// within a type), for variable-length payloads.
    #[test]
    fn truncation_detected(v in proptest::collection::vec(any::<u64>(), 1..16)) {
        let bytes = v.to_bytes();
        for cut in 1..bytes.len() {
            prop_assert!(Vec::<u64>::from_bytes(&bytes[..cut]).is_none());
        }
    }

    /// CSR adjacency preserves the edge multiset.
    #[test]
    fn adjacency_preserves_edges(
        pairs in proptest::collection::vec((0u64..40, 0u64..40), 0..200)
    ) {
        let edges: Vec<Edge> = pairs.iter().map(|&(s, d)| Edge::new(s, d)).collect();
        let graph = EdgeList::new(40, edges);
        let adj = Adjacency::from_edge_list(&graph);
        prop_assert_eq!(adj.num_edges(), graph.edges.len());
        let mut from_adj: Vec<(u64, u64)> = (0..40)
            .flat_map(|v| adj.neighbors(v).iter().map(move |&d| (v, d)))
            .collect();
        let mut from_list: Vec<(u64, u64)> =
            graph.edges.iter().map(|e| (e.src, e.dst)).collect();
        from_adj.sort_unstable();
        from_list.sort_unstable();
        prop_assert_eq!(from_adj, from_list);
        // Degrees agree.
        let degrees = graph.out_degrees();
        for v in 0..40u64 {
            prop_assert_eq!(adj.out_degree(v), degrees[v as usize] as usize);
        }
    }

    /// `undirected()` doubles non-loop edges and preserves loops.
    #[test]
    fn undirected_edge_accounting(
        pairs in proptest::collection::vec((0u64..20, 0u64..20), 0..100)
    ) {
        let graph = EdgeList::from_pairs(pairs.clone());
        let loops = pairs.iter().filter(|(s, d)| s == d).count() as u64;
        let und = graph.undirected();
        prop_assert_eq!(und.num_edges(), 2 * graph.num_edges() - loops);
    }

    /// mix64 is injective-ish in practice: no collisions on small dense
    /// ranges, and unit_f64 stays in [0,1).
    #[test]
    fn hash_quality(start in any::<u32>()) {
        let mut seen = std::collections::HashSet::new();
        for i in 0..256u64 {
            let h = mix64(start as u64 + i);
            prop_assert!(seen.insert(h), "collision at offset {i}");
            let u = unit_f64(start as u64 + i);
            prop_assert!((0.0..1.0).contains(&u));
        }
    }
}
