//! Graph sessions: the paper's physical graph schema inside the database.
//!
//! A [`GraphSession`] owns three tables in the catalog (§2.2, "Physical
//! Storage"):
//!
//! * `<name>_vertex (id, value, halted)` — vertex id, encoded vertex value,
//!   halt state;
//! * `<name>_edge (src, dst, weight, created, etype)` — edges, with the
//!   metadata attributes §4 attaches (weight, creation timestamp, type);
//! * `<name>_message (recipient, sender, value)` — in-flight messages.

use std::sync::Arc;

use vertexica_common::graph::{Edge, EdgeList, VertexId};
use vertexica_common::VertexData;
use vertexica_sql::Database;
use vertexica_storage::{
    Column, ColumnBuilder, DataType, Field, RecordBatch, Schema, TableOptions, Value,
};

use crate::error::{VertexicaError, VertexicaResult};

/// A graph stored relationally, plus the database it lives in.
#[derive(Clone)]
pub struct GraphSession {
    db: Arc<Database>,
    name: String,
}

impl GraphSession {
    /// Creates the vertex/edge/message tables for a new graph.
    pub fn create(db: Arc<Database>, name: &str) -> VertexicaResult<Self> {
        let session = GraphSession { db, name: name.to_ascii_lowercase() };
        let catalog = session.db.catalog();
        catalog.create_table(
            &session.vertex_table(),
            vertex_schema(),
            TableOptions::default().sorted_by(vec![0]),
        )?;
        catalog.create_table(
            &session.edge_table(),
            edge_schema(),
            TableOptions::default().sorted_by(vec![0]),
        )?;
        catalog.create_table(
            &session.message_table(),
            message_schema(),
            TableOptions::default().sorted_by(vec![0]),
        )?;
        Ok(session)
    }

    /// Opens an existing graph by name.
    pub fn open(db: Arc<Database>, name: &str) -> VertexicaResult<Self> {
        let session = GraphSession { db, name: name.to_ascii_lowercase() };
        // Validate all three tables exist.
        for t in [session.vertex_table(), session.edge_table(), session.message_table()] {
            session.db.catalog().get(&t)?;
        }
        Ok(session)
    }

    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn vertex_table(&self) -> String {
        format!("{}_vertex", self.name)
    }

    pub fn edge_table(&self) -> String {
        format!("{}_edge", self.name)
    }

    pub fn message_table(&self) -> String {
        format!("{}_message", self.name)
    }

    /// Bulk-loads an edge list: all edges into the edge table, and one vertex
    /// row per id in `0..num_vertices` (value NULL, halted false).
    ///
    /// Loads are segmented at [`crate::input::STREAM_CHUNK_ROWS`] rows per
    /// ROS segment rather than one monolithic segment, so segment-granular
    /// machinery — zone-map pruning, and the pull-based scan cursor whose
    /// in-flight unit is one segment batch — stays bounded on huge graphs.
    pub fn load_edges(&self, graph: &EdgeList) -> VertexicaResult<()> {
        self.load_edges_shard(graph, 0, 1)
    }

    /// Sharded bulk load: keeps only the rows this engine shard **owns**
    /// under the engine-wide ownership hash
    /// ([`vertexica_storage::partition::int_key_partition`] over vid) —
    /// vertex rows where `owner(id) == shard` and edge rows where
    /// `owner(src) == shard`, so every vertex is colocated with its outbound
    /// edges. `load_edges` is exactly shard 0 of 1 (the hash maps everything
    /// to 0), so the single-database layout is unchanged byte for byte.
    ///
    /// Chunk boundaries follow the *global* id space, so each global
    /// [`crate::input::STREAM_CHUNK_ROWS`]-row window yields at most one
    /// (smaller) local segment per shard and segment-granular machinery
    /// stays bounded regardless of shard count.
    pub fn load_edges_shard(
        &self,
        graph: &EdgeList,
        shard: usize,
        num_shards: usize,
    ) -> VertexicaResult<()> {
        assert!(shard < num_shards.max(1), "shard {shard} out of range for {num_shards} shards");
        let owner = |id: i64| vertexica_storage::partition::int_key_partition(id, num_shards);
        let seg_rows = crate::input::STREAM_CHUNK_ROWS;
        // Vertices.
        let n = graph.num_vertices as usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + seg_rows).min(n);
            let local: Vec<usize> =
                (start..end).filter(|id| num_shards == 1 || owner(*id as i64) == shard).collect();
            start = end;
            if local.is_empty() {
                continue;
            }
            let mut ids = ColumnBuilder::with_capacity(DataType::Int, local.len());
            let mut values = ColumnBuilder::with_capacity(DataType::Blob, local.len());
            let mut halted = ColumnBuilder::with_capacity(DataType::Bool, local.len());
            for id in local {
                ids.push_int(id as i64);
                values.push_null();
                halted.push(Value::Bool(false)).map_err(VertexicaError::from)?;
            }
            let vbatch = RecordBatch::new(
                vertex_schema(),
                vec![ids.finish(), values.finish(), halted.finish()],
            )
            .map_err(VertexicaError::from)?;
            self.db.append_batches(&self.vertex_table(), &[vbatch])?;
        }

        // Edges (created = 0, etype NULL for plain loads).
        for chunk in graph.edges.chunks(seg_rows.max(1)) {
            let local: Vec<&Edge> =
                chunk.iter().filter(|e| num_shards == 1 || owner(e.src as i64) == shard).collect();
            if local.is_empty() {
                continue;
            }
            let mut src = ColumnBuilder::with_capacity(DataType::Int, local.len());
            let mut dst = ColumnBuilder::with_capacity(DataType::Int, local.len());
            let mut weight = ColumnBuilder::with_capacity(DataType::Float, local.len());
            let mut created = ColumnBuilder::with_capacity(DataType::Int, local.len());
            let mut etype = ColumnBuilder::with_capacity(DataType::Str, local.len());
            for e in local {
                src.push_int(e.src as i64);
                dst.push_int(e.dst as i64);
                weight.push_float(e.weight);
                created.push_int(0);
                etype.push_null();
            }
            let ebatch = RecordBatch::new(
                edge_schema(),
                vec![src.finish(), dst.finish(), weight.finish(), created.finish(), etype.finish()],
            )
            .map_err(VertexicaError::from)?;
            self.db.append_batches(&self.edge_table(), &[ebatch])?;
        }
        Ok(())
    }

    /// Loads edges with explicit creation timestamps and types (the §4
    /// metadata), used by dynamic/temporal analyses.
    pub fn load_edges_with_metadata(
        &self,
        edges: &[(Edge, i64, Option<String>)],
        num_vertices: u64,
    ) -> VertexicaResult<()> {
        let base = EdgeList::new(num_vertices, vec![]);
        self.load_edges(&base)?;
        let m = edges.len();
        let mut src = ColumnBuilder::with_capacity(DataType::Int, m);
        let mut dst = ColumnBuilder::with_capacity(DataType::Int, m);
        let mut weight = ColumnBuilder::with_capacity(DataType::Float, m);
        let mut created = ColumnBuilder::with_capacity(DataType::Int, m);
        let mut etype = ColumnBuilder::with_capacity(DataType::Str, m);
        for (e, ts, t) in edges {
            src.push_int(e.src as i64);
            dst.push_int(e.dst as i64);
            weight.push_float(e.weight);
            created.push_int(*ts);
            match t {
                Some(s) => etype.push(Value::Str(s.clone())).map_err(VertexicaError::from)?,
                None => etype.push_null(),
            }
        }
        let batch = RecordBatch::new(
            edge_schema(),
            vec![src.finish(), dst.finish(), weight.finish(), created.finish(), etype.finish()],
        )
        .map_err(VertexicaError::from)?;
        self.db.append_batches(&self.edge_table(), &[batch])?;
        Ok(())
    }

    pub fn num_vertices(&self) -> VertexicaResult<u64> {
        Ok(self.db.query_int(&format!("SELECT COUNT(*) FROM {}", self.vertex_table()))? as u64)
    }

    pub fn num_edges(&self) -> VertexicaResult<u64> {
        Ok(self.db.query_int(&format!("SELECT COUNT(*) FROM {}", self.edge_table()))? as u64)
    }

    /// Out-degree per vertex (vertices without out-edges get 0), computed
    /// relationally.
    pub fn out_degrees(&self) -> VertexicaResult<Vec<(VertexId, u64)>> {
        let rows = self.db.query(&format!(
            "SELECT v.id, COUNT(e.src) FROM {v} v LEFT JOIN {e} e ON v.id = e.src \
             GROUP BY v.id ORDER BY v.id",
            v = self.vertex_table(),
            e = self.edge_table()
        ))?;
        Ok(rows
            .into_iter()
            .map(|r| {
                let id = r[0].as_int().unwrap_or(0) as VertexId;
                let d = r[1].as_int().unwrap_or(0) as u64;
                (id, d)
            })
            .collect())
    }

    /// Decodes all vertex values, sorted by id. Blob decoding is
    /// embarrassingly parallel over storage batches, so it runs on the
    /// database's shared worker pool (sequential inline when the pool has a
    /// single worker or the table a single batch).
    pub fn vertex_values<V: VertexData + Send>(&self) -> VertexicaResult<Vec<(VertexId, V)>> {
        // Snapshot a cursor under a brief read lock; decode unlocked.
        let mut cursor = {
            let table = self.db.catalog().get(&self.vertex_table())?;
            let guard = table.read();
            guard.scan_cursor(Some(&[0, 1]), &[])?
        };
        let mut batches = Vec::new();
        while let Some(batch) = cursor.next_batch()? {
            batches.push(batch);
        }
        let decoded: Vec<VertexicaResult<Vec<(VertexId, V)>>> =
            self.db.runtime().map_indexed(batches, |_, batch| {
                let ids = batch.column(0);
                let vals = batch.column(1);
                let mut out = Vec::with_capacity(batch.num_rows());
                for i in 0..batch.num_rows() {
                    let id = ids.value(i).as_int().unwrap_or(0) as VertexId;
                    if vals.is_null(i) {
                        continue;
                    }
                    let Value::Blob(bytes) = vals.value(i) else {
                        return Err(VertexicaError::Codec("vertex value is not a blob".into()));
                    };
                    let v = V::from_bytes(&bytes).ok_or_else(|| {
                        VertexicaError::Codec(format!("cannot decode value of vertex {id}"))
                    })?;
                    out.push((id, v));
                }
                Ok(out)
            });
        let mut out = Vec::new();
        for batch in decoded {
            out.extend(batch?);
        }
        out.sort_by_key(|(id, _)| *id);
        Ok(out)
    }

    /// Drops the graph's tables (including any temporaries left behind).
    pub fn drop_graph(self) -> VertexicaResult<()> {
        let catalog = self.db.catalog();
        catalog.drop_table_if_exists(&self.vertex_table())?;
        catalog.drop_table_if_exists(&self.edge_table())?;
        catalog.drop_table_if_exists(&self.message_table())?;
        catalog.drop_table_if_exists(&format!("{}_vertex_new", self.name))?;
        catalog.drop_table_if_exists(&format!("{}_message_new", self.name))?;
        Ok(())
    }
}

/// Schema of the vertex table.
pub fn vertex_schema() -> Arc<Schema> {
    Schema::new(vec![
        Field::not_null("id", DataType::Int),
        Field::new("value", DataType::Blob),
        Field::new("halted", DataType::Bool),
    ])
}

/// Schema of the edge table.
pub fn edge_schema() -> Arc<Schema> {
    Schema::new(vec![
        Field::not_null("src", DataType::Int),
        Field::not_null("dst", DataType::Int),
        Field::new("weight", DataType::Float),
        Field::new("created", DataType::Int),
        Field::new("etype", DataType::Str),
    ])
}

/// Schema of the message table.
pub fn message_schema() -> Arc<Schema> {
    Schema::new(vec![
        Field::not_null("recipient", DataType::Int),
        Field::new("sender", DataType::Int),
        Field::new("value", DataType::Blob),
    ])
}

/// Builds a message-table batch from (recipient, sender, payload) triples.
pub fn message_batch(messages: &[(VertexId, VertexId, Vec<u8>)]) -> VertexicaResult<RecordBatch> {
    let mut rec = ColumnBuilder::with_capacity(DataType::Int, messages.len());
    let mut snd = ColumnBuilder::with_capacity(DataType::Int, messages.len());
    let mut val = ColumnBuilder::with_capacity(DataType::Blob, messages.len());
    for (r, s, v) in messages {
        rec.push_int(*r as i64);
        snd.push_int(*s as i64);
        val.push(Value::Blob(v.clone())).map_err(VertexicaError::from)?;
    }
    let cols: Vec<Column> = vec![rec.finish(), snd.finish(), val.finish()];
    RecordBatch::new(message_schema(), cols).map_err(VertexicaError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> EdgeList {
        EdgeList::from_pairs([(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn create_and_load() {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db.clone(), "G").unwrap();
        g.load_edges(&diamond()).unwrap();
        assert_eq!(g.num_vertices().unwrap(), 4);
        assert_eq!(g.num_edges().unwrap(), 4);
        // Tables visible to plain SQL.
        assert_eq!(db.query_int("SELECT COUNT(*) FROM g_edge WHERE src = 0").unwrap(), 2);
    }

    #[test]
    fn duplicate_graph_rejected() {
        let db = Arc::new(Database::new());
        GraphSession::create(db.clone(), "g").unwrap();
        assert!(GraphSession::create(db, "g").is_err());
    }

    #[test]
    fn open_requires_tables() {
        let db = Arc::new(Database::new());
        assert!(GraphSession::open(db.clone(), "ghost").is_err());
        GraphSession::create(db.clone(), "g").unwrap();
        assert!(GraphSession::open(db, "g").is_ok());
    }

    #[test]
    fn out_degrees_include_sinks() {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges(&diamond()).unwrap();
        let deg = g.out_degrees().unwrap();
        assert_eq!(deg, vec![(0, 2), (1, 1), (2, 1), (3, 0)]);
    }

    #[test]
    fn vertex_values_decode() {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db.clone(), "g").unwrap();
        g.load_edges(&diamond()).unwrap();
        // Write an encoded f64 into vertex 2.
        let bytes = 2.5f64.to_bytes();
        let table = db.catalog().get("g_vertex").unwrap();
        {
            let scans = table.read().scan_with_rowids(None, &[]).unwrap();
            let mut updates = Vec::new();
            for (batch, ids) in scans {
                for (i, &rowid) in ids.iter().enumerate().take(batch.num_rows()) {
                    if batch.row(i)[0] == Value::Int(2) {
                        updates.push((
                            rowid,
                            vec![Value::Int(2), Value::Blob(bytes.clone()), Value::Bool(false)],
                        ));
                    }
                }
            }
            table.write().update_rows(updates).unwrap();
        }
        let vals: Vec<(VertexId, f64)> = g.vertex_values().unwrap();
        assert_eq!(vals, vec![(2, 2.5)]);
    }

    #[test]
    fn vertex_values_decode_in_parallel_across_batches() {
        // Five separate appends → five storage segments → five pool tasks.
        let db = Arc::new(Database::new());
        db.set_worker_threads(4);
        let g = GraphSession::create(db.clone(), "g").unwrap();
        let table = db.catalog().get("g_vertex").unwrap();
        for chunk in 0..5i64 {
            let rows: Vec<Vec<Value>> = (0..10)
                .map(|i| {
                    let id = chunk * 10 + i;
                    vec![Value::Int(id), Value::Blob((id as f64).to_bytes()), Value::Bool(false)]
                })
                .collect();
            let batch = RecordBatch::from_rows(vertex_schema(), &rows).unwrap();
            table.write().append_batch(&batch).unwrap();
        }
        let vals: Vec<(VertexId, f64)> = g.vertex_values().unwrap();
        assert_eq!(vals.len(), 50);
        for (i, (id, v)) in vals.iter().enumerate() {
            assert_eq!(*id, i as VertexId);
            assert_eq!(*v, i as f64);
        }
    }

    #[test]
    fn drop_graph_removes_tables() {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db.clone(), "g").unwrap();
        g.load_edges(&diamond()).unwrap();
        GraphSession::open(db.clone(), "g").unwrap().drop_graph().unwrap();
        assert!(db.query("SELECT * FROM g_vertex").is_err());
    }

    #[test]
    fn message_batch_builds() {
        let b = message_batch(&[(1, 0, vec![1, 2]), (2, 0, vec![3])]).unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.column(0).value(1), Value::Int(2));
    }

    #[test]
    fn load_with_metadata() {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db.clone(), "g").unwrap();
        g.load_edges_with_metadata(
            &[
                (Edge::new(0, 1), 100, Some("family".into())),
                (Edge::new(1, 2), 200, Some("friend".into())),
                (Edge::new(2, 0), 300, None),
            ],
            3,
        )
        .unwrap();
        assert_eq!(db.query_int("SELECT COUNT(*) FROM g_edge WHERE etype = 'family'").unwrap(), 1);
        assert_eq!(db.query_int("SELECT COUNT(*) FROM g_edge WHERE created > 150").unwrap(), 2);
    }
}
