//! Sharded execution: the graph hash-partitioned across N engine shards.
//!
//! A [`ShardedDatabase`] owns N fully independent [`Database`] engines —
//! each with its own catalog, worker pool and (when durable) its own WAL
//! directory under `<root>/shard<k>/`. Shard ownership is the engine-wide
//! ownership hash [`int_key_partition`] over vertex id: a vertex row, its
//! outbound edges (keyed by `src`) and its inbound messages (keyed by
//! `recipient`) all land on the owning shard, so at superstep time **only
//! message rows ever cross a shard boundary** — a shard's message table
//! holds the messages its vertices *produced*, whatever their recipient.
//!
//! ## Prescan-sealed cross-shard routing
//!
//! Each superstep, every shard thread:
//!
//! 1. prescans its local source tables' key columns and computes, for every
//!    (destination shard, destination partition) pair, how many union-schema
//!    rows it will contribute (`prescan_counts` — the cross-shard
//!    generalization of [`crate::input::partition_row_plan`]);
//! 2. swaps those count matrices with every other shard through a condvar
//!    rendezvous (control plane only — no data moves here);
//! 3. streams its local assemble, splitting every chunk by owner: the local
//!    piece feeds its own pipelined scatter, remote pieces are pushed into
//!    lock-free per-(source, destination) [`Outbox`]es while the destination
//!    is still assembling — the PR-4 overlapped dataflow crosses shard
//!    boundaries, and a partition fed from three shards **seals the moment
//!    its last inbound row lands** (the summed count matrices told it
//!    exactly how many to expect), not at any superstep-wide barrier.
//!
//! The only barrier left is the halting vote, which becomes two-phase: each
//! shard reports its local pending-message and active-vertex counts, and the
//! coordinator sums them before launching the next superstep.
//!
//! ## Bitwise equivalence with the single-database engine
//!
//! `shards = 1` runs [`crate::coordinator::run_program`] on the one
//! underlying session with the caller's exact config — byte-for-byte the
//! single-database code path. For N ≥ 2 the coordinator coerces the config
//! (`sharded_config`): table-union input, streaming + pipelined +
//! parallel-apply on, and **the apply-side combiner off**. The combiner must
//! be off because it folds per recipient *within the producing shard*: a
//! recipient fed from two shards would see `(a⊕b) ⊕ (c⊕d)` where the
//! single-database run folds `((a⊕b)⊕c)⊕d` — bitwise-divergent for
//! non-associative f64 folds. With raw messages the N-shard union of message
//! tables equals the 1-shard table row-for-row, and the worker's canonical
//! input sort makes every compute call's message slice identical. Global
//! aggregators are folded from the merged per-vertex partials sorted by
//! (name, vid) — the exact fold order of the single-database apply.
//!
//! ## Per-shard durability and crash repair
//!
//! On a durable [`ShardedDatabase::create`]/[`open`](ShardedDatabase::open)
//! root, every shard's apply commit additionally swaps two bookkeeping
//! tables *in the same atomic WAL commit record*: a `<name>_shard_meta`
//! stamp table (superstep number, global vertex count, shard count, and the
//! superstep's *input* aggregates as `f64::to_bits`) and a
//! `<name>_message_prev` retention of the superstep's message *input*. The
//! halting vote keeps shard stamps within one superstep of each other, so
//! recovery ([`repair_if_needed`]) sees spread ≤ 1: a shard that crashed
//! before committing superstep `s` re-runs it locally, pulling its
//! remote-owned input rows from each peer — from the peer's retained
//! `_message_prev` if the peer already committed `s`, from its live message
//! table if it is equally behind. The repair commit is bitwise-identical to
//! the one the crash interrupted, and idempotent.

use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use vertexica_common::sync::{AtomicBool, AtomicU64, Condvar, Mutex, Ordering};

use vertexica_common::graph::EdgeList;
use vertexica_common::hash::FxHashMap;
use vertexica_common::pregel::{AggKind, VertexProgram};
use vertexica_common::runtime::{Outbox, PoolMetrics};
use vertexica_common::timer::Stopwatch;
use vertexica_common::{VertexData, VertexId};
use vertexica_sql::{Database, SqlError, TransformUdf};
use vertexica_storage::partition::{int_key_partition, split_batch};
use vertexica_storage::{DataType, Field, RecordBatch, Schema, TableOptions, Value};

use crate::apply::{apply_parallel_with_extra, ParallelApply};
use crate::config::{InputMode, VertexicaConfig};
use crate::coordinator::{
    initialize_vertices_with_total, resume_program, run_program, RunStats, SuperstepStats,
};
use crate::error::{VertexicaError, VertexicaResult};
use crate::input::{assemble_chunks, message_union_batch};
use crate::session::{message_schema, GraphSession};
use crate::worker::VertexWorker;

/// The meta stamp written by initialization, before superstep 0 commits.
const STAMP_INIT: i64 = -1;

/// N independent engine shards behind one handle. In-memory
/// ([`ShardedDatabase::new`]) or durable, with each shard's WAL and segment
/// files under `<root>/shard<k>/` and the shard count recorded in
/// `<root>/SHARDS` ([`create`](Self::create) / [`open`](Self::open)).
pub struct ShardedDatabase {
    shards: Vec<Arc<Database>>,
    root: Option<PathBuf>,
}

impl ShardedDatabase {
    /// N in-memory shards (no durability, no repair — crash state dies with
    /// the process).
    pub fn new(num_shards: usize) -> Arc<Self> {
        let n = num_shards.max(1);
        Arc::new(ShardedDatabase {
            shards: (0..n).map(|_| Arc::new(Database::new())).collect(),
            root: None,
        })
    }

    /// Creates a durable sharded database: `<root>/SHARDS` records the shard
    /// count and each shard opens (WAL + segment files) under
    /// `<root>/shard<k>/`.
    pub fn create(root: impl AsRef<Path>, num_shards: usize) -> VertexicaResult<Arc<Self>> {
        let n = num_shards.max(1);
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)
            .map_err(|e| VertexicaError::Runtime(format!("create shard root: {e}")))?;
        std::fs::write(root.join("SHARDS"), format!("{n}\n"))
            .map_err(|e| VertexicaError::Runtime(format!("write SHARDS: {e}")))?;
        Self::open_shards(root, n)
    }

    /// Reopens a durable sharded database, recovering **every** shard (each
    /// shard's `Database::open` replays its own WAL to its last committed
    /// superstep boundary).
    pub fn open(root: impl AsRef<Path>) -> VertexicaResult<Arc<Self>> {
        let root = root.as_ref().to_path_buf();
        let text = std::fs::read_to_string(root.join("SHARDS"))
            .map_err(|e| VertexicaError::Runtime(format!("read SHARDS: {e}")))?;
        let n: usize = text
            .trim()
            .parse()
            .map_err(|_| VertexicaError::Runtime(format!("corrupt SHARDS file: {text:?}")))?;
        if n == 0 {
            return Err(VertexicaError::Runtime("SHARDS file declares zero shards".into()));
        }
        Self::open_shards(root, n)
    }

    fn open_shards(root: PathBuf, n: usize) -> VertexicaResult<Arc<Self>> {
        let mut shards = Vec::with_capacity(n);
        for k in 0..n {
            shards.push(Arc::new(Database::open(root.join(format!("shard{k}")))?));
        }
        Ok(Arc::new(ShardedDatabase { shards, root: Some(root) }))
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn shard(&self, k: usize) -> &Arc<Database> {
        &self.shards[k]
    }

    pub fn shards(&self) -> &[Arc<Database>] {
        &self.shards
    }

    /// Whether the shards are disk-backed (opened from a root directory).
    pub fn is_durable(&self) -> bool {
        self.root.is_some()
    }

    pub fn root(&self) -> Option<&Path> {
        self.root.as_deref()
    }

    /// Checkpoints every shard (flushes segment files, truncates each WAL).
    pub fn checkpoint(&self) -> VertexicaResult<()> {
        for s in &self.shards {
            s.checkpoint()?;
        }
        Ok(())
    }
}

/// A graph hash-partitioned across the shards of a [`ShardedDatabase`]:
/// one [`GraphSession`] per shard holding the shard-owned slice of the
/// vertex/edge/message tables, plus the per-shard crash-repair bookkeeping
/// tables (`<name>_shard_meta`, `<name>_message_prev`).
pub struct ShardedGraphSession {
    db: Arc<ShardedDatabase>,
    sessions: Vec<GraphSession>,
    name: String,
}

impl ShardedGraphSession {
    /// Creates the per-shard graph tables plus the shard-meta stamp table
    /// and the previous-message retention table on every shard.
    pub fn create(db: Arc<ShardedDatabase>, name: &str) -> VertexicaResult<Self> {
        let name = name.to_ascii_lowercase();
        let mut sessions = Vec::with_capacity(db.num_shards());
        for shard_db in db.shards() {
            let sess = GraphSession::create(shard_db.clone(), &name)?;
            shard_db.catalog().create_table(
                &format!("{name}_shard_meta"),
                meta_schema(),
                TableOptions::default(),
            )?;
            shard_db.catalog().create_table(
                &format!("{name}_message_prev"),
                message_schema(),
                TableOptions::default().sorted_by(vec![0]),
            )?;
            sessions.push(sess);
        }
        Ok(ShardedGraphSession { db, sessions, name })
    }

    /// Opens an existing sharded graph and asserts the crash invariant the
    /// halting vote guarantees: every shard's superstep stamp is within one
    /// superstep of every other (and no shard is missing its stamp while
    /// another has one — that means a crash during initialization, which is
    /// not repairable; reload the graph).
    pub fn open(db: Arc<ShardedDatabase>, name: &str) -> VertexicaResult<Self> {
        let name = name.to_ascii_lowercase();
        let mut sessions = Vec::with_capacity(db.num_shards());
        for shard_db in db.shards() {
            let sess = GraphSession::open(shard_db.clone(), &name)?;
            shard_db.catalog().get(&format!("{name}_shard_meta"))?;
            shard_db.catalog().get(&format!("{name}_message_prev"))?;
            sessions.push(sess);
        }
        let ss = ShardedGraphSession { db, sessions, name };
        let stamps = ss.stamps()?;
        let known: Vec<i64> = stamps.iter().flatten().copied().collect();
        if !known.is_empty() {
            if known.len() != stamps.len() {
                return Err(VertexicaError::Runtime(format!(
                    "graph {}: {} of {} shards have no superstep stamp — crash during \
                     initialization; reload the graph",
                    ss.name,
                    stamps.len() - known.len(),
                    stamps.len()
                )));
            }
            let min = known.iter().min().copied().unwrap_or(STAMP_INIT);
            let max = known.iter().max().copied().unwrap_or(STAMP_INIT);
            if max - min > 1 {
                return Err(VertexicaError::Runtime(format!(
                    "graph {}: shard superstep stamps spread {min}..{max} — the halting vote \
                     bounds the spread to 1; storage is corrupt",
                    ss.name
                )));
            }
        }
        Ok(ss)
    }

    pub fn db(&self) -> &Arc<ShardedDatabase> {
        &self.db
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn num_shards(&self) -> usize {
        self.sessions.len()
    }

    /// The per-shard sessions, indexed by shard id.
    pub fn shard_sessions(&self) -> &[GraphSession] {
        &self.sessions
    }

    /// Name of the per-shard superstep stamp table.
    pub fn meta_table(&self) -> String {
        format!("{}_shard_meta", self.name)
    }

    /// Name of the per-shard previous-superstep message retention table.
    pub fn message_prev_table(&self) -> String {
        format!("{}_message_prev", self.name)
    }

    /// Sharded bulk load: every shard keeps exactly the rows it owns
    /// ([`GraphSession::load_edges_shard`]), so the vertex table, outbound
    /// edges and (at runtime) inbound message rows of a vertex are all local
    /// to its owning shard.
    pub fn load_edges(&self, graph: &EdgeList) -> VertexicaResult<()> {
        let n = self.sessions.len();
        for (k, sess) in self.sessions.iter().enumerate() {
            sess.load_edges_shard(graph, k, n)?;
        }
        Ok(())
    }

    /// Global vertex count (sum of shard-local counts).
    pub fn num_vertices(&self) -> VertexicaResult<u64> {
        let mut n = 0;
        for sess in &self.sessions {
            n += sess.num_vertices()?;
        }
        Ok(n)
    }

    /// Global edge count (sum of shard-local counts).
    pub fn num_edges(&self) -> VertexicaResult<u64> {
        let mut n = 0;
        for sess in &self.sessions {
            n += sess.num_edges()?;
        }
        Ok(n)
    }

    /// Decodes all vertex values across every shard, sorted by id — same
    /// contract as [`GraphSession::vertex_values`].
    pub fn vertex_values<V: VertexData + Send>(&self) -> VertexicaResult<Vec<(VertexId, V)>> {
        let mut out = Vec::new();
        for sess in &self.sessions {
            out.extend(sess.vertex_values::<V>()?);
        }
        out.sort_by_key(|(id, _)| *id);
        Ok(out)
    }

    /// Every shard's superstep stamp (`None` = the shard has never been
    /// initialized).
    pub fn stamps(&self) -> VertexicaResult<Vec<Option<i64>>> {
        let table = self.meta_table();
        self.sessions.iter().map(|s| Ok(read_meta(s, &table)?.map(|m| m.stamp))).collect()
    }

    /// Checkpoints every shard.
    pub fn checkpoint(&self) -> VertexicaResult<()> {
        self.db.checkpoint()
    }
}

// ---------------------------------------------------------------------------
// Shard meta: the per-shard superstep stamp table.
// ---------------------------------------------------------------------------

/// Schema of the `<name>_shard_meta` stamp table.
fn meta_schema() -> Arc<Schema> {
    Schema::new(vec![
        Field::not_null("key", DataType::Str),
        Field::not_null("value", DataType::Int),
    ])
}

/// The decoded contents of a shard's meta table. `aggregates` are the
/// stamped superstep's **input** aggregates (what `prev_aggregates` was when
/// it ran) — exactly what a behind shard needs to re-run that superstep.
struct ShardMeta {
    stamp: i64,
    num_vertices: u64,
    num_shards: usize,
    aggregates: FxHashMap<String, f64>,
}

/// Builds the meta rows for one stamp. f64 aggregate values are stored as
/// their exact bit patterns, so repair folds from bit-identical inputs.
fn meta_rows(
    stamp: i64,
    num_vertices: u64,
    num_shards: usize,
    aggregates: &FxHashMap<String, f64>,
) -> Vec<Vec<Value>> {
    let mut rows = vec![
        vec![Value::Str("stamp".into()), Value::Int(stamp)],
        vec![Value::Str("num_vertices".into()), Value::Int(num_vertices as i64)],
        vec![Value::Str("num_shards".into()), Value::Int(num_shards as i64)],
    ];
    let mut names: Vec<&String> = aggregates.keys().collect();
    names.sort();
    for name in names {
        rows.push(vec![
            Value::Str(format!("agg.{name}")),
            Value::Int(aggregates[name].to_bits() as i64),
        ]);
    }
    rows
}

fn read_meta(sess: &GraphSession, table: &str) -> VertexicaResult<Option<ShardMeta>> {
    let rows = sess.db().query(&format!("SELECT key, value FROM {table}"))?;
    if rows.is_empty() {
        return Ok(None);
    }
    let mut stamp = None;
    let mut num_vertices = 0u64;
    let mut num_shards = 0usize;
    let mut aggregates = FxHashMap::default();
    for r in rows {
        let Value::Str(key) = r[0].clone() else { continue };
        let Some(v) = r[1].as_int() else { continue };
        match key.as_str() {
            "stamp" => stamp = Some(v),
            "num_vertices" => num_vertices = v as u64,
            "num_shards" => num_shards = v as usize,
            k => {
                if let Some(name) = k.strip_prefix("agg.") {
                    aggregates.insert(name.to_string(), f64::from_bits(v as u64));
                }
            }
        }
    }
    let stamp = stamp
        .ok_or_else(|| VertexicaError::Runtime(format!("{table}: meta rows without a stamp")))?;
    Ok(Some(ShardMeta { stamp, num_vertices, num_shards, aggregates }))
}

/// A fresh catalog [`vertexica_storage::Table`] holding `rows` under
/// `table`'s live schema/options — for init-time grouped replacement.
fn meta_fresh_table(
    sess: &GraphSession,
    table: &str,
    rows: &[Vec<Value>],
) -> VertexicaResult<vertexica_storage::Table> {
    let table_ref = sess.db().catalog().get(table)?;
    let (name, schema, options) = {
        let guard = table_ref.read();
        (guard.name().to_string(), guard.schema().clone(), guard.options().clone())
    };
    let mut fresh = vertexica_storage::Table::new(name, schema.clone(), options);
    fresh.append_batch(&RecordBatch::from_rows(schema, rows).map_err(VertexicaError::from)?)?;
    Ok(fresh)
}

/// Replaces a shard's meta table contents outside a superstep commit (used
/// when resuming from a checkpoint, to re-anchor repair at the restored
/// boundary).
fn replace_meta(
    sess: &GraphSession,
    table: &str,
    stamp: i64,
    num_vertices: u64,
    num_shards: usize,
    aggregates: &FxHashMap<String, f64>,
) -> VertexicaResult<()> {
    let fresh =
        meta_fresh_table(sess, table, &meta_rows(stamp, num_vertices, num_shards, aggregates))?;
    sess.db().catalog().replace_contents_many(vec![(table.to_string(), fresh)])?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Config coercion.
// ---------------------------------------------------------------------------

/// The config an N ≥ 2 sharded run actually executes with. Coercions and
/// why (each is proven bitwise-safe by the equivalence harness):
///
/// * `input_mode = TableUnion`, `streaming`/`pipelined`/`parallel_apply` on —
///   the sharded exchange is built into the streamed, plan-sealed producer;
/// * `use_combiner = false` — the combiner folds per recipient *within the
///   producing shard*, which groups non-associative f64 folds differently
///   than the single-database run (see the module docs); raw messages make
///   the N-shard union of message tables equal the 1-shard table;
/// * durable ⇒ `replace_threshold = 0.0` — forces the atomic grouped-commit
///   replace arm every superstep, so the meta stamp can never commit apart
///   from the vertex state it describes (the in-place update arm mutates
///   rows after the commit, non-atomically);
/// * `memory_budget_bytes` is divided by the shard count — N shards share
///   the one global budget instead of multiplying it.
fn sharded_config(config: &VertexicaConfig, num_shards: usize, durable: bool) -> VertexicaConfig {
    let mut c = config.clone();
    c.shards = num_shards;
    c.input_mode = InputMode::TableUnion;
    c.streaming = true;
    c.pipelined = true;
    c.parallel_apply = true;
    c.use_combiner = false;
    c.durable = durable;
    if durable {
        c.replace_threshold = 0.0;
    }
    if let Some(budget) = c.memory_budget_bytes {
        c.memory_budget_bytes = Some((budget / num_shards.max(1)).max(1));
    }
    c
}

// ---------------------------------------------------------------------------
// The superstep exchange: outboxes + counts rendezvous.
// ---------------------------------------------------------------------------

/// One superstep's cross-shard fabric: an [`Outbox`] per (source,
/// destination) pair, the counts rendezvous, routing counters, and the
/// abort flag any failing shard raises so its peers stop waiting on it.
struct Exchange {
    /// `boxes[src][dst]` — src pushes, dst drains. The diagonal is unused.
    boxes: Vec<Vec<Outbox<RecordBatch>>>,
    counts: CountsBoard,
    remote_messages: AtomicU64,
    routed_bytes: AtomicU64,
    abort: AtomicBool,
}

impl Exchange {
    fn new(n: usize) -> Self {
        Exchange {
            boxes: (0..n).map(|_| (0..n).map(|_| Outbox::new()).collect()).collect(),
            counts: CountsBoard::new(n),
            remote_messages: AtomicU64::new(0),
            routed_bytes: AtomicU64::new(0),
            abort: AtomicBool::new(false),
        }
    }

    fn num_shards(&self) -> usize {
        self.boxes.len()
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// Raised by a shard that errored or panicked: peers waiting on its
    /// counts or its outbox stream-end unstick via the flag, and closing the
    /// failed shard's outboxes wakes any parked consumer promptly.
    fn fail(&self, shard: usize) {
        self.abort.store(true, Ordering::Release);
        for d in 0..self.boxes.len() {
            if d != shard {
                self.boxes[shard][d].close();
            }
        }
    }
}

/// The counts rendezvous: every shard deposits its
/// `counts[destination][partition]` matrix and waits (control plane only —
/// no rows block here) until all N are in, then reads the full set. Waits
/// poll the abort flag so one failing shard cannot hang the rest.
struct CountsBoard {
    slots: Mutex<CountsState>,
    ready: Condvar,
}

struct CountsState {
    filled: usize,
    slots: Vec<Option<Vec<Vec<u64>>>>,
}

impl CountsBoard {
    fn new(n: usize) -> Self {
        CountsBoard {
            slots: Mutex::new(CountsState { filled: 0, slots: vec![None; n] }),
            ready: Condvar::new(),
        }
    }

    fn exchange(
        &self,
        shard: usize,
        counts: Vec<Vec<u64>>,
        abort: &AtomicBool,
    ) -> VertexicaResult<Vec<Vec<Vec<u64>>>> {
        let mut guard = self.slots.lock();
        debug_assert!(guard.slots[shard].is_none(), "shard {shard} deposited counts twice");
        guard.slots[shard] = Some(counts);
        guard.filled += 1;
        if guard.filled == guard.slots.len() {
            self.ready.notify_all();
        }
        while guard.filled < guard.slots.len() {
            // Polling the abort flag is what lets one failed shard unstick
            // its peers; the model checker proves the poll load-bearing by
            // seeding `shard.skip_abort_recheck`.
            if abort.load(Ordering::Acquire)
                && !vertexica_common::sync::model::mutation_enabled("shard.skip_abort_recheck")
            {
                return Err(VertexicaError::Runtime(
                    "sharded superstep aborted during counts exchange".into(),
                ));
            }
            let (g, _) = self.ready.wait_timeout(guard, Duration::from_millis(50));
            guard = g;
        }
        Ok(guard.slots.iter().map(|s| s.clone().expect("all slots filled")).collect())
    }
}

/// One shard's contribution to every destination's row plan:
/// `counts[d][p]` = union-schema rows from this shard's tables whose key
/// hashes to shard `d`, partition `p`. Key columns only — same cost shape as
/// [`crate::input::partition_row_plan`], which this generalizes. Vertex and
/// edge rows are owner-local by construction (the load hashed them here),
/// but hashing the owner anyway keeps the plan consistent with the scatter
/// by definition rather than by convention.
fn prescan_counts(
    sess: &GraphSession,
    num_shards: usize,
    num_partitions: usize,
) -> VertexicaResult<Vec<Vec<u64>>> {
    let parts = num_partitions.max(1);
    let mut counts = vec![vec![0u64; parts]; num_shards];
    for table in [sess.vertex_table(), sess.edge_table(), sess.message_table()] {
        let mut cursor = sess.db().scan_cursor(&table, Some(&[0]), &[])?;
        while let Some(batch) = cursor.next_batch()? {
            let keys = batch.column(0);
            for i in 0..batch.num_rows() {
                let Some(key) = keys.value(i).as_int() else { continue };
                counts[int_key_partition(key, num_shards)][int_key_partition(key, parts)] += 1;
            }
        }
    }
    Ok(counts)
}

// ---------------------------------------------------------------------------
// One shard's superstep.
// ---------------------------------------------------------------------------

/// Everything one shard reports back from one superstep, for global stat
/// aggregation.
struct ShardReport {
    outcome: crate::apply::SuperstepOutcome,
    assemble_secs: f64,
    compute_secs: f64,
    overlap_secs: f64,
    apply_secs: f64,
    input_bytes: usize,
    peak_batch_bytes: usize,
    peak_resident_scan_bytes: usize,
    early_dispatches: usize,
    pool_delta: PoolMetrics,
    wal_records: u64,
    wal_bytes: u64,
    flush_bytes: u64,
    resident_bytes: u64,
    evictions: u64,
    reloads: u64,
    /// Worker-input rows this shard consumed (local + inbound) — the skew
    /// gauge's numerator.
    input_rows: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_shard_superstep<P: VertexProgram + 'static>(
    sess: &GraphSession,
    program: &Arc<P>,
    config: &VertexicaConfig,
    shard: usize,
    exchange: &Exchange,
    superstep: u64,
    num_vertices: u64,
    prev_aggregates: &FxHashMap<String, f64>,
    meta_table: &str,
    msg_prev_table: &str,
) -> VertexicaResult<ShardReport> {
    let n = exchange.num_shards();
    let parts = config.num_partitions.max(1);
    let db = sess.db();
    let pool_before = db.runtime().metrics();
    let dur_before = db.durability_stats();
    let buffer_pool = db.catalog().buffer_pool().clone();
    buffer_pool.reset_peak();
    let bp_before = buffer_pool.stats();

    // Durable: retain this superstep's message *input* for crash repair. The
    // segments are pre-encoded here and committed atomically with the apply.
    let msg_prev_segments = if config.durable {
        let batches = db.scan_table(&sess.message_table(), None, &[])?;
        Some(db.encode_segments_for(msg_prev_table, batches)?)
    } else {
        None
    };

    // Control plane: plan every destination's per-partition row counts and
    // swap matrices with the peers. expected[p] = what partition p of THIS
    // shard will receive from all N sources — the seal thresholds.
    let counts = prescan_counts(sess, n, parts)?;
    let matrix = exchange.counts.exchange(shard, counts, &exchange.abort)?;
    let expected: Vec<u64> = (0..parts).map(|p| matrix.iter().map(|m| m[shard][p]).sum()).collect();
    let input_rows: u64 = expected.iter().sum();

    // This thread produces into its own outboxes and is the single consumer
    // of every inbound one.
    for j in 0..n {
        if j != shard {
            exchange.boxes[j][shard].register_consumer();
        }
    }

    let worker: Arc<dyn TransformUdf> = Arc::new(VertexWorker {
        program: program.clone(),
        superstep,
        num_vertices,
        prev_aggregates: Arc::new(prev_aggregates.clone()),
        use_combiner: config.use_combiner,
        pool: Some(db.runtime().clone()),
    });
    let apply = ParallelApply::for_program(program.as_ref(), config.num_workers.max(1));

    let report = db.run_transform_pipelined(
        &worker,
        vec![0],
        parts,
        Some(expected),
        &mut |chunk_sink| {
            // Local assemble, split every chunk by owner: own piece into the
            // pipelined scatter, remote pieces into the outboxes. Between
            // own chunks, opportunistically drain inbound boxes so remote
            // rows keep flowing (and sealing partitions) while both sides
            // still stream.
            let peak = assemble_chunks(
                sess,
                config.input_mode,
                config.stream_chunk_rows,
                config.streaming_scan,
                &mut |chunk| {
                    if exchange.aborted() {
                        return Err(VertexicaError::Runtime("sharded superstep aborted".into()));
                    }
                    for (d, piece) in split_batch(&chunk, &[0], n).map_err(VertexicaError::from)? {
                        if d == shard {
                            chunk_sink(piece).map_err(VertexicaError::from)?;
                        } else {
                            exchange
                                .remote_messages
                                .fetch_add(piece.num_rows() as u64, Ordering::Relaxed);
                            exchange
                                .routed_bytes
                                .fetch_add(piece.estimated_bytes() as u64, Ordering::Relaxed);
                            exchange.boxes[shard][d].push(piece);
                        }
                    }
                    for j in 0..n {
                        if j != shard {
                            for piece in exchange.boxes[j][shard].try_drain() {
                                chunk_sink(piece).map_err(VertexicaError::from)?;
                            }
                        }
                    }
                    Ok(())
                },
            )
            .map_err(|e| match e {
                VertexicaError::Sql(e) => e,
                other => SqlError::Execution(other.to_string()),
            })?;

            // Local EOF: everything this shard will ever route is pushed.
            for d in 0..n {
                if d != shard {
                    exchange.boxes[shard][d].close();
                }
            }

            // Drain every peer to stream-end. Reading `closed` BEFORE the
            // drain makes the final drain complete: close happens-after the
            // producer's last push.
            let mut done = vec![false; n];
            done[shard] = true;
            loop {
                let mut progressed = false;
                let mut remaining = false;
                for (j, done_j) in done.iter_mut().enumerate() {
                    if *done_j {
                        continue;
                    }
                    let inbox = &exchange.boxes[j][shard];
                    let closed = inbox.is_closed();
                    let pieces = inbox.try_drain();
                    progressed |= !pieces.is_empty();
                    for piece in pieces {
                        chunk_sink(piece)?;
                    }
                    if closed {
                        for piece in inbox.try_drain() {
                            progressed = true;
                            chunk_sink(piece)?;
                        }
                        *done_j = true;
                    } else {
                        remaining = true;
                    }
                }
                if !remaining {
                    break;
                }
                if !progressed {
                    if exchange.aborted() {
                        return Err(SqlError::Execution(format!(
                            "shard {shard}: sharded superstep aborted"
                        )));
                    }
                    std::thread::park_timeout(Duration::from_micros(200));
                }
            }
            if exchange.aborted() {
                return Err(SqlError::Execution(format!(
                    "shard {shard}: sharded superstep aborted"
                )));
            }
            Ok(peak)
        },
        &|idx, out| apply.absorb(idx, &out).map_err(|e| SqlError::Udf(e.to_string())),
    )?;

    // Apply, with the meta stamp (and the retained message input, when
    // durable) riding the same atomic grouped commit.
    let meta_batch = RecordBatch::from_rows(
        meta_schema(),
        &meta_rows(superstep as i64, num_vertices, n, prev_aggregates),
    )
    .map_err(VertexicaError::from)?;
    let mut extra =
        vec![(meta_table.to_string(), db.encode_segments_for(meta_table, vec![meta_batch])?)];
    if let Some(segments) = msg_prev_segments {
        extra.push((msg_prev_table.to_string(), segments));
    }
    let sw = Stopwatch::start();
    let outcome =
        apply_parallel_with_extra(sess, program.as_ref(), config, apply, num_vertices, extra)?;
    let apply_secs = sw.elapsed_secs();

    let pool_delta = db.runtime().metrics().delta_since(&pool_before);
    let (wal_records, wal_bytes, flush_bytes) = match (dur_before, db.durability_stats()) {
        (Some(before), Some(after)) => (
            after.wal_records - before.wal_records,
            after.wal_bytes - before.wal_bytes,
            after.flush_bytes - before.flush_bytes,
        ),
        _ => (0, 0, 0),
    };
    let bp_after = buffer_pool.stats();
    Ok(ShardReport {
        outcome,
        assemble_secs: report.assemble_secs,
        compute_secs: report.compute_secs,
        overlap_secs: report.overlap_secs,
        apply_secs,
        input_bytes: report.input_bytes,
        peak_batch_bytes: report.peak_chunk_bytes,
        peak_resident_scan_bytes: report.peak_resident_scan_bytes,
        early_dispatches: report.early_dispatches,
        pool_delta,
        wal_records,
        wal_bytes,
        flush_bytes,
        resident_bytes: buffer_pool.peak_resident_bytes(),
        evictions: bp_after.evictions - bp_before.evictions,
        reloads: bp_after.reloads - bp_before.reloads,
        input_rows,
    })
}

// ---------------------------------------------------------------------------
// The sharded coordinator.
// ---------------------------------------------------------------------------

/// Runs a vertex program across every shard of a [`ShardedGraphSession`].
///
/// `shards = 1` (one underlying database) delegates to the plain
/// [`run_program`] with the caller's **exact** config — byte-for-byte the
/// single-database code path. N ≥ 2 executes with the coerced
/// `sharded_config` (see its docs for each coercion and why); results are
/// bitwise-identical to a 1-shard run of the same program under
/// `use_combiner = false` (the cross-engine harness proves it per
/// algorithm).
pub fn run_sharded<P: VertexProgram + 'static>(
    ss: &ShardedGraphSession,
    program: Arc<P>,
    config: &VertexicaConfig,
) -> VertexicaResult<RunStats> {
    let n = ss.num_shards();
    if n == 1 {
        return run_program(&ss.sessions[0], program, config);
    }
    let total = Stopwatch::start();
    let c = sharded_config(config, n, ss.db.is_durable());
    vertexica_sql::expr::set_vectorized_expr(c.vectorized_expr);
    for sess in ss.shard_sessions() {
        sess.db().runtime().resize(c.num_workers);
        if let Some(budget) = c.memory_budget_bytes {
            sess.db().catalog().buffer_pool().set_budget(Some(budget));
        }
    }
    let num_vertices = ss.num_vertices()?;
    // Initialize every shard's local rows with the GLOBAL vertex count (e.g.
    // PageRank's 1/N seed must see the whole graph); the freshly stamped
    // meta table rides each shard's init commit so a crash can never
    // separate an initialized shard from its stamp.
    let meta_table = ss.meta_table();
    for sess in ss.shard_sessions() {
        let meta = meta_fresh_table(
            sess,
            &meta_table,
            &meta_rows(STAMP_INIT, num_vertices, n, &FxHashMap::default()),
        )?;
        initialize_vertices_with_total(
            sess,
            program.as_ref(),
            num_vertices,
            vec![(meta_table.clone(), meta)],
        )?;
    }
    if c.durable {
        ss.db.checkpoint()?;
    }
    let mut stats = superstep_loop_sharded(ss, program, &c, num_vertices, 0, FxHashMap::default())?;
    if c.durable {
        ss.db.checkpoint()?;
    }
    stats.total_secs = total.elapsed_secs();
    Ok(stats)
}

/// Resumes a sharded run from per-shard checkpoints written by
/// [`run_sharded`] under `<checkpoint_dir>/shard<k>/`. All shards must have
/// checkpointed the same superstep (they do — the checkpoint happens on the
/// coordinator thread, between supersteps).
pub fn resume_sharded<P: VertexProgram + 'static>(
    ss: &ShardedGraphSession,
    program: Arc<P>,
    config: &VertexicaConfig,
) -> VertexicaResult<RunStats> {
    let n = ss.num_shards();
    if n == 1 {
        return resume_program(&ss.sessions[0], program, config);
    }
    let dir = config
        .checkpoint_dir
        .as_ref()
        .ok_or_else(|| VertexicaError::Checkpoint("no checkpoint_dir configured".into()))?
        .clone();
    let total = Stopwatch::start();
    let c = sharded_config(config, n, ss.db.is_durable());
    vertexica_sql::expr::set_vectorized_expr(c.vectorized_expr);
    for sess in ss.shard_sessions() {
        sess.db().runtime().resize(c.num_workers);
        if let Some(budget) = c.memory_budget_bytes {
            sess.db().catalog().buffer_pool().set_budget(Some(budget));
        }
    }
    let mut state: Option<crate::checkpoint::CheckpointState> = None;
    for (k, sess) in ss.shard_sessions().iter().enumerate() {
        let s = crate::checkpoint::restore(sess, dir.join(format!("shard{k}")))?;
        match &state {
            Some(prev) if prev.superstep != s.superstep => {
                return Err(VertexicaError::Checkpoint(format!(
                    "shard checkpoints disagree: shard 0 at superstep {}, shard {k} at {}",
                    prev.superstep, s.superstep
                )));
            }
            Some(_) => {}
            None => state = Some(s),
        }
    }
    let state =
        state.ok_or_else(|| VertexicaError::Checkpoint("sharded database has no shards".into()))?;
    let num_vertices = ss.num_vertices()?;
    // Re-anchor every shard's meta stamp at the restored boundary, so crash
    // repair reasons from the checkpoint rather than the interrupted run.
    let meta_table = ss.meta_table();
    for sess in ss.shard_sessions() {
        replace_meta(
            sess,
            &meta_table,
            state.superstep as i64,
            num_vertices,
            n,
            &state.aggregates,
        )?;
    }
    let mut stats = superstep_loop_sharded(
        ss,
        program,
        &c,
        num_vertices,
        state.superstep + 1,
        state.aggregates.clone(),
    )?;
    if c.durable {
        ss.db.checkpoint()?;
    }
    stats.total_secs = total.elapsed_secs();
    Ok(stats)
}

fn superstep_loop_sharded<P: VertexProgram + 'static>(
    ss: &ShardedGraphSession,
    program: Arc<P>,
    config: &VertexicaConfig,
    num_vertices: u64,
    start_superstep: u64,
    mut prev_aggregates: FxHashMap<String, f64>,
) -> VertexicaResult<RunStats> {
    let n = ss.num_shards();
    let meta_table = ss.meta_table();
    let msg_prev_table = ss.message_prev_table();
    let agg_specs: FxHashMap<String, AggKind> =
        program.aggregators().into_iter().map(|s| (s.name.to_string(), s.kind)).collect();
    let mut stats = RunStats::default();
    let max_supersteps = config.max_supersteps.min(program.max_supersteps());
    let mut superstep = start_superstep;

    loop {
        if superstep >= max_supersteps {
            break;
        }
        // Two-phase halting vote, phase one: sum per-shard pending/active
        // counts. The vote (here and the post-apply phase two below) is the
        // only superstep-wide synchronization point — rows never barrier.
        if superstep > start_superstep || start_superstep > 0 {
            let mut pending = 0i64;
            let mut active = 0i64;
            for sess in ss.shard_sessions() {
                pending += sess
                    .db()
                    .query_int(&format!("SELECT COUNT(*) FROM {}", sess.message_table()))?;
                active += sess.db().query_int(&format!(
                    "SELECT COUNT(*) FROM {} WHERE halted = FALSE",
                    sess.vertex_table()
                ))?;
            }
            if pending == 0 && active == 0 {
                break;
            }
        }

        // One thread per shard; outboxes and the counts rendezvous tie them
        // together. A shard that errors or panics raises the exchange abort
        // so its peers unstick, then the first error propagates.
        let exchange = Exchange::new(n);
        let results: Vec<VertexicaResult<ShardReport>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ss
                .shard_sessions()
                .iter()
                .enumerate()
                .map(|(k, sess)| {
                    let exchange = &exchange;
                    let program = &program;
                    let prev = &prev_aggregates;
                    let meta_table = meta_table.as_str();
                    let msg_prev_table = msg_prev_table.as_str();
                    scope.spawn(move || {
                        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            run_shard_superstep(
                                sess,
                                program,
                                config,
                                k,
                                exchange,
                                superstep,
                                num_vertices,
                                prev,
                                meta_table,
                                msg_prev_table,
                            )
                        }))
                        .unwrap_or_else(|_| {
                            Err(VertexicaError::Runtime(format!(
                                "shard {k} panicked in superstep {superstep}"
                            )))
                        });
                        if result.is_err() {
                            exchange.fail(k);
                        }
                        result
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(VertexicaError::Runtime("shard thread join failed".into()))
                    })
                })
                .collect()
        });
        let mut reports = Vec::with_capacity(n);
        for r in results {
            reports.push(r?);
        }

        // Global aggregators: merge every shard's per-vertex partials and
        // fold them sorted by (name, vid) — the single-database apply's
        // exact fold order, so f64 folds are bitwise-identical.
        let mut partials: Vec<(String, i64, f64)> =
            reports.iter().flat_map(|r| r.outcome.agg_partials.iter().cloned()).collect();
        partials.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        let mut folded: FxHashMap<String, (AggKind, f64)> = FxHashMap::default();
        for (name, _, v) in &partials {
            let kind = agg_specs[name];
            let entry = folded.entry(name.clone()).or_insert((kind, kind.identity()));
            entry.1 = kind.combine(entry.1, *v);
        }
        let aggregates: FxHashMap<String, f64> =
            folded.into_iter().map(|(k, (_, v))| (k, v)).collect();

        let messages: usize = reports.iter().map(|r| r.outcome.messages).sum();
        let vertex_changes: usize = reports.iter().map(|r| r.outcome.vertex_changes).sum();
        let all_halted = reports.iter().all(|r| r.outcome.all_halted);
        let total_rows: u64 = reports.iter().map(|r| r.input_rows).sum();
        let mean_rows = total_rows as f64 / n as f64;
        let shard_skew = if mean_rows > 0.0 {
            reports.iter().map(|r| r.input_rows).max().unwrap_or(0) as f64 / mean_rows
        } else {
            1.0
        };
        let fmax = |f: fn(&ShardReport) -> f64| reports.iter().map(f).fold(0.0f64, f64::max);

        prev_aggregates = aggregates.clone();
        stats.per_superstep.push(SuperstepStats {
            superstep,
            messages,
            vertex_changes,
            replaced: reports.iter().any(|r| r.outcome.replaced),
            assemble_secs: fmax(|r| r.assemble_secs),
            compute_secs: fmax(|r| r.compute_secs),
            apply_secs: fmax(|r| r.apply_secs),
            apply_parallelism: reports
                .iter()
                .map(|r| r.outcome.apply_parallelism)
                .max()
                .unwrap_or(1),
            overlap_secs: fmax(|r| r.overlap_secs),
            queue_wait_secs: reports.iter().map(|r| r.pool_delta.queue_wait_secs).sum(),
            steals: reports.iter().map(|r| r.pool_delta.tasks_stolen).sum(),
            nested_scopes: reports.iter().map(|r| r.pool_delta.nested_scopes).sum(),
            peak_batch_bytes: reports.iter().map(|r| r.peak_batch_bytes).max().unwrap_or(0),
            input_bytes: reports.iter().map(|r| r.input_bytes).sum(),
            peak_resident_scan_bytes: reports.iter().map(|r| r.peak_resident_scan_bytes).sum(),
            early_dispatches: reports.iter().map(|r| r.early_dispatches).sum(),
            wal_records: reports.iter().map(|r| r.wal_records).sum(),
            wal_bytes: reports.iter().map(|r| r.wal_bytes).sum(),
            flush_bytes: reports.iter().map(|r| r.flush_bytes).sum(),
            resident_bytes: reports.iter().map(|r| r.resident_bytes).sum(),
            evictions: reports.iter().map(|r| r.evictions).sum(),
            reloads: reports.iter().map(|r| r.reloads).sum(),
            remote_messages: exchange.remote_messages.load(Ordering::Relaxed),
            routed_bytes: exchange.routed_bytes.load(Ordering::Relaxed),
            shard_skew,
        });
        stats.total_messages += messages as u64;
        stats.supersteps = superstep + 1 - start_superstep;
        stats.aggregates = aggregates;

        if let (Some(every), Some(dir)) = (config.checkpoint_every, &config.checkpoint_dir) {
            if (superstep + 1).is_multiple_of(every) {
                for (k, sess) in ss.shard_sessions().iter().enumerate() {
                    crate::checkpoint::save(
                        sess,
                        dir.join(format!("shard{k}")),
                        superstep,
                        &prev_aggregates,
                    )?;
                }
            }
        }

        // Two-phase halting vote, phase two: every shard's outcome counted.
        if messages == 0 && all_halted {
            break;
        }
        superstep += 1;
    }
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Crash repair.
// ---------------------------------------------------------------------------

/// Brings every shard to the same superstep boundary after a crash.
///
/// Call after [`ShardedDatabase::open`] + [`ShardedGraphSession::open`]
/// (which already replayed each shard's WAL and asserted stamp spread ≤ 1).
/// If all shards stamp the same superstep there is nothing to do
/// (`Ok(None)`). If some shard is one behind — the crash hit between two
/// shards' apply commits — the behind shard **re-runs** the missing
/// superstep locally: its own tables still hold exactly that superstep's
/// local input, and its remote-owned input rows are read from each peer
/// (the peer's retained `_message_prev` table if the peer committed the
/// superstep, its live message table if it is equally behind). The re-run
/// commit is bitwise-identical to the one the crash interrupted — same
/// input multiset, same canonical worker sort, same apply — and idempotent:
/// crashing *during repair* just repairs again. Returns the repaired
/// superstep number.
pub fn repair_if_needed<P: VertexProgram + 'static>(
    ss: &ShardedGraphSession,
    program: Arc<P>,
    config: &VertexicaConfig,
) -> VertexicaResult<Option<u64>> {
    let n = ss.num_shards();
    if n == 1 {
        return Ok(None);
    }
    let meta_table = ss.meta_table();
    let metas: Vec<Option<ShardMeta>> = ss
        .shard_sessions()
        .iter()
        .map(|s| read_meta(s, &meta_table))
        .collect::<VertexicaResult<_>>()?;
    if metas.iter().all(|m| m.is_none()) {
        return Ok(None);
    }
    if metas.iter().any(|m| m.is_none()) {
        return Err(VertexicaError::Runtime(format!(
            "graph {}: some shards have no superstep stamp — crash during initialization; \
             reload the graph",
            ss.name
        )));
    }
    let mut stamps: Vec<i64> = metas.iter().map(|m| m.as_ref().expect("checked").stamp).collect();
    let s_max = *stamps.iter().max().expect("non-empty");
    let s_min = *stamps.iter().min().expect("non-empty");
    if s_max - s_min > 1 {
        return Err(VertexicaError::Runtime(format!(
            "graph {}: shard stamps spread {s_min}..{s_max} exceeds the vote-barrier bound of 1",
            ss.name
        )));
    }
    if s_max == s_min {
        return Ok(None);
    }
    if !ss.db.is_durable() {
        return Err(VertexicaError::Runtime(
            "cannot repair a non-durable sharded database: no retained message input".into(),
        ));
    }
    let superstep = s_max as u64;
    let ahead = stamps.iter().position(|&s| s == s_max).expect("max exists");
    let ahead_meta = metas[ahead].as_ref().expect("checked");
    if ahead_meta.num_shards != n {
        return Err(VertexicaError::Runtime(format!(
            "graph {}: meta says {} shards but the database has {n}",
            ss.name, ahead_meta.num_shards
        )));
    }
    let agg_in = ahead_meta.aggregates.clone();
    let num_vertices = ahead_meta.num_vertices;

    let c = sharded_config(config, n, true);
    vertexica_sql::expr::set_vectorized_expr(c.vectorized_expr);
    for sess in ss.shard_sessions() {
        sess.db().runtime().resize(c.num_workers);
    }
    for b in 0..n {
        if stamps[b] == s_max {
            continue;
        }
        repair_shard(ss, &program, &c, b, superstep, num_vertices, &agg_in, &stamps)?;
        // The repaired shard's `_message_prev` now holds the superstep's
        // input (like any shard that committed it) — later behind shards
        // must read it from there, not from the now-advanced live table.
        stamps[b] = s_max;
    }
    ss.db.checkpoint()?;
    Ok(Some(superstep))
}

/// Re-runs one missing superstep on one behind shard (see
/// [`repair_if_needed`] for the protocol).
#[allow(clippy::too_many_arguments)]
fn repair_shard<P: VertexProgram + 'static>(
    ss: &ShardedGraphSession,
    program: &Arc<P>,
    config: &VertexicaConfig,
    shard: usize,
    superstep: u64,
    num_vertices: u64,
    agg_in: &FxHashMap<String, f64>,
    stamps: &[i64],
) -> VertexicaResult<()> {
    let n = ss.num_shards();
    let sess = &ss.shard_sessions()[shard];
    let db = sess.db();
    let msg_prev_table = ss.message_prev_table();
    let meta_table = ss.meta_table();

    // Remote-owned input rows from every peer's copy of the superstep's
    // message input, reshaped to the union-schema wire format.
    let mut remote: Vec<RecordBatch> = Vec::new();
    for (j, peer) in ss.shard_sessions().iter().enumerate() {
        if j == shard {
            continue;
        }
        let table = if stamps[j] == superstep as i64 {
            msg_prev_table.clone()
        } else {
            peer.message_table()
        };
        for batch in peer.db().scan_table(&table, None, &[])? {
            for (d, piece) in split_batch(&batch, &[0], n).map_err(VertexicaError::from)? {
                if d == shard {
                    remote.push(message_union_batch(&piece)?);
                }
            }
        }
    }

    // Retain this shard's own message input before apply swaps it, for
    // idempotence and for any peer repaired after us.
    let msg_prev_segments =
        db.encode_segments_for(&msg_prev_table, db.scan_table(&sess.message_table(), None, &[])?)?;

    let worker: Arc<dyn TransformUdf> = Arc::new(VertexWorker {
        program: program.clone(),
        superstep,
        num_vertices,
        prev_aggregates: Arc::new(agg_in.clone()),
        use_combiner: config.use_combiner,
        pool: Some(db.runtime().clone()),
    });
    let parts = config.num_partitions.max(1);
    let apply = ParallelApply::for_program(program.as_ref(), config.num_workers.max(1));
    let mut remote = Some(remote);
    db.run_transform_pipelined(
        &worker,
        vec![0],
        parts,
        None,
        &mut |chunk_sink| {
            let peak = assemble_chunks(
                sess,
                config.input_mode,
                config.stream_chunk_rows,
                config.streaming_scan,
                &mut |chunk| {
                    for (d, piece) in split_batch(&chunk, &[0], n).map_err(VertexicaError::from)? {
                        // Own rows feed the worker. Remote-owned rows in the
                        // local message table were already consumed by their
                        // (ahead or just-repaired) owners — drop them.
                        if d == shard {
                            chunk_sink(piece).map_err(VertexicaError::from)?;
                        }
                    }
                    Ok(())
                },
            )
            .map_err(|e| match e {
                VertexicaError::Sql(e) => e,
                other => SqlError::Execution(other.to_string()),
            })?;
            for piece in remote.take().unwrap_or_default() {
                chunk_sink(piece)?;
            }
            Ok(peak)
        },
        &|idx, out| apply.absorb(idx, &out).map_err(|e| SqlError::Udf(e.to_string())),
    )?;

    let meta_batch = RecordBatch::from_rows(
        meta_schema(),
        &meta_rows(superstep as i64, num_vertices, n, agg_in),
    )
    .map_err(VertexicaError::from)?;
    let extra = vec![
        (meta_table.clone(), db.encode_segments_for(&meta_table, vec![meta_batch])?),
        (msg_prev_table.clone(), msg_prev_segments),
    ];
    apply_parallel_with_extra(sess, program.as_ref(), config, apply, num_vertices, extra)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vertexica_common::pregel::{InitContext, VertexContext, VertexContextExt};

    /// HashMax connected components (same as the coordinator's test program).
    struct MaxId;
    impl VertexProgram for MaxId {
        type Value = u64;
        type Message = u64;

        fn initial_value(&self, id: VertexId, _init: &InitContext) -> u64 {
            id
        }

        fn compute(&self, ctx: &mut dyn VertexContext<u64, u64>, messages: &[u64]) {
            let best = messages.iter().copied().fold(*ctx.value(), u64::max);
            if best > *ctx.value() || ctx.superstep() == 0 {
                ctx.set_value(best);
                ctx.send_to_all_neighbors(best);
            }
            ctx.vote_to_halt();
        }

        fn name(&self) -> &'static str {
            "maxid"
        }
    }

    /// Two components joined through several cross-owner edges, big enough
    /// that 2 and 3 shards each own something.
    fn chain_graph() -> EdgeList {
        let mut pairs = Vec::new();
        for i in 0..19u64 {
            pairs.push((i, i + 1));
            pairs.push((i + 1, i));
        }
        pairs.push((30, 31));
        pairs.push((31, 30));
        EdgeList::from_pairs(pairs)
    }

    fn test_config() -> VertexicaConfig {
        VertexicaConfig::default()
            .with_workers(2)
            .with_partitions(8)
            .with_combiner(false)
            .with_replace_threshold(0.0)
            .with_durable(false)
            .with_memory_budget(None)
    }

    fn plain_run() -> (Vec<(VertexId, u64)>, RunStats) {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges(&chain_graph()).unwrap();
        let stats = run_program(&g, Arc::new(MaxId), &test_config()).unwrap();
        (g.vertex_values().unwrap(), stats)
    }

    fn sharded_run(n: usize) -> (Vec<(VertexId, u64)>, RunStats) {
        let db = ShardedDatabase::new(n);
        let ss = ShardedGraphSession::create(db, "g").unwrap();
        ss.load_edges(&chain_graph()).unwrap();
        let stats = run_sharded(&ss, Arc::new(MaxId), &test_config()).unwrap();
        (ss.vertex_values().unwrap(), stats)
    }

    #[test]
    fn sharded_matches_single_database() {
        let (vals1, stats1) = plain_run();
        for n in [2usize, 3] {
            let (vals_n, stats_n) = sharded_run(n);
            assert_eq!(vals1, vals_n, "{n} shards: vertex values diverged");
            assert_eq!(stats1.total_messages, stats_n.total_messages, "{n} shards");
            assert_eq!(stats1.supersteps, stats_n.supersteps, "{n} shards");
            for (a, b) in stats1.per_superstep.iter().zip(&stats_n.per_superstep) {
                assert_eq!(a.messages, b.messages, "{n} shards, superstep {}", a.superstep);
                assert_eq!(a.vertex_changes, b.vertex_changes, "{n} shards");
            }
            // The chain crosses owners, so rows actually routed.
            assert!(
                stats_n.per_superstep.iter().map(|s| s.remote_messages).sum::<u64>() > 0,
                "{n} shards: expected cross-shard routing"
            );
            assert!(
                stats_n.per_superstep.iter().map(|s| s.routed_bytes).sum::<u64>() > 0,
                "{n} shards: routed bytes untracked"
            );
            assert!(stats_n.per_superstep.iter().all(|s| s.shard_skew >= 1.0));
        }
    }

    #[test]
    fn one_shard_collapses_to_plain_run() {
        let (vals1, stats1) = plain_run();
        let (vals_s, stats_s) = sharded_run(1);
        assert_eq!(vals1, vals_s);
        assert_eq!(stats1.total_messages, stats_s.total_messages);
        assert_eq!(stats1.supersteps, stats_s.supersteps);
        // A 1-shard run never routes.
        assert!(stats_s.per_superstep.iter().all(|s| s.remote_messages == 0));
    }

    #[test]
    fn sharded_load_partitions_by_ownership_hash() {
        let db = ShardedDatabase::new(3);
        let ss = ShardedGraphSession::create(db, "g").unwrap();
        ss.load_edges(&chain_graph()).unwrap();
        assert_eq!(ss.num_vertices().unwrap(), 32);
        assert_eq!(ss.num_edges().unwrap(), 40);
        for (k, sess) in ss.shard_sessions().iter().enumerate() {
            // Every local vertex and edge row is owned by this shard.
            for row in sess.db().query(&format!("SELECT id FROM {}", sess.vertex_table())).unwrap()
            {
                let id = row[0].as_int().unwrap();
                assert_eq!(int_key_partition(id, 3), k, "vertex {id} misplaced");
            }
            for row in sess.db().query(&format!("SELECT src FROM {}", sess.edge_table())).unwrap() {
                let src = row[0].as_int().unwrap();
                assert_eq!(int_key_partition(src, 3), k, "edge src {src} misplaced");
            }
        }
    }

    #[test]
    fn meta_roundtrip() {
        let db = ShardedDatabase::new(2);
        let ss = ShardedGraphSession::create(db, "g").unwrap();
        let mut aggs = FxHashMap::default();
        aggs.insert("sum".to_string(), 0.1 + 0.2); // not exactly representable
        let sess = &ss.shard_sessions()[0];
        replace_meta(sess, &ss.meta_table(), 7, 42, 2, &aggs).unwrap();
        let meta = read_meta(sess, &ss.meta_table()).unwrap().unwrap();
        assert_eq!(meta.stamp, 7);
        assert_eq!(meta.num_vertices, 42);
        assert_eq!(meta.num_shards, 2);
        // Bit-exact f64 round trip through the Int column.
        assert_eq!(meta.aggregates["sum"].to_bits(), (0.1f64 + 0.2).to_bits());
        // An un-stamped shard reads as None.
        assert!(read_meta(&ss.shard_sessions()[1], &ss.meta_table()).unwrap().is_none());
    }

    #[test]
    fn prescan_counts_cover_all_rows() {
        let db = ShardedDatabase::new(2);
        let ss = ShardedGraphSession::create(db, "g").unwrap();
        ss.load_edges(&chain_graph()).unwrap();
        let mut total = 0u64;
        for sess in ss.shard_sessions() {
            let counts = prescan_counts(sess, 2, 4).unwrap();
            total += counts.iter().flatten().sum::<u64>();
        }
        // vertices + edges (no messages yet).
        assert_eq!(total, 32 + 40);
    }

    #[test]
    fn counts_board_aborts_instead_of_hanging() {
        let board = CountsBoard::new(2);
        let abort = AtomicBool::new(true);
        let err = board.exchange(0, vec![vec![0]], &abort);
        assert!(err.is_err(), "an aborted exchange must not wait for the missing shard");
    }
}

/// Bounded model checks of the counts rendezvous: every interleaving of two
/// depositing shards must hand both the complete matrix, and a shard that
/// fails before depositing must unstick its waiting peer via the abort
/// flag. Compiled only under `RUSTFLAGS='--cfg vertexica_model'`.
#[cfg(all(test, vertexica_model))]
mod model_tests {
    use super::*;
    use vertexica_common::sync::model::{self, Config, ViolationKind};

    /// Both shards deposit and rendezvous: each must observe the full,
    /// identical matrix, whichever order deposits and waits interleave in.
    fn rendezvous_scenario() {
        let board = Arc::new(CountsBoard::new(2));
        let abort = Arc::new(AtomicBool::new(false));
        let peer = {
            let board = board.clone();
            let abort = abort.clone();
            model::spawn(move || {
                board.exchange(1, vec![vec![10], vec![11]], &abort).expect("peer exchange")
            })
        };
        let mine = board.exchange(0, vec![vec![0], vec![1]], &abort).expect("exchange");
        let theirs = peer.join();
        assert_eq!(mine, theirs, "shards observed different count matrices");
        assert_eq!(mine[0], vec![vec![0], vec![1]]);
        assert_eq!(mine[1], vec![vec![10], vec![11]]);
    }

    /// Shard 1 fails before depositing: shard 0's timed wait must notice
    /// the abort flag and error out instead of waiting for a deposit that
    /// will never come.
    fn abort_scenario() {
        let board = Arc::new(CountsBoard::new(2));
        let abort = Arc::new(AtomicBool::new(false));
        let failer = {
            let abort = abort.clone();
            model::spawn(move || abort.store(true, Ordering::Release))
        };
        let res = board.exchange(0, vec![vec![1]], &abort);
        failer.join();
        assert!(res.is_err(), "abort must unstick the counts rendezvous");
    }

    #[test]
    fn model_shard_rendezvous_clean() {
        let cfg = Config { max_preemptions: 2, ..Config::default() };
        let stats = model::check(&cfg, rendezvous_scenario)
            .unwrap_or_else(|v| panic!("counts rendezvous violated:\n{v}"));
        assert!(stats.exhausted, "bounded schedule space not exhausted: {stats:?}");
        eprintln!("[model] shard rendezvous clean: {stats:?}");
    }

    #[test]
    fn model_shard_abort_unsticks_waiter_clean() {
        let cfg = Config { max_preemptions: 2, ..Config::default() };
        let stats = model::check(&cfg, abort_scenario)
            .unwrap_or_else(|v| panic!("abort-aware wait violated:\n{v}"));
        assert!(stats.exhausted, "bounded schedule space not exhausted: {stats:?}");
        assert!(stats.ops.contains("cond.wait"), "timed wait never explored: {:?}", stats.ops);
        eprintln!("[model] shard abort clean: {stats:?}");
    }

    /// Seeding `shard.skip_abort_recheck` (drop the abort poll from the
    /// wait loop) strands the waiter on a rendezvous that can never fill;
    /// once its timeout-wake budget is spent the checker must report the
    /// stuck state as a deadlock, deterministically.
    #[test]
    fn model_shard_skip_abort_recheck_mutation_detected() {
        let cfg = Config {
            max_preemptions: 2,
            mutation: Some("shard.skip_abort_recheck"),
            ..Config::default()
        };
        let v1 = model::check(&cfg, abort_scenario)
            .expect_err("seeded missing-abort-poll bug must be detected");
        assert_eq!(v1.kind, ViolationKind::Deadlock, "unexpected violation:\n{v1}");
        let v2 = model::check(&cfg, abort_scenario).expect_err("second run must also fail");
        assert_eq!(v1.schedule, v2.schedule, "minimal schedule not deterministic");
        assert_eq!(v1.schedules_explored, v2.schedules_explored);
        eprintln!("[model] shard mutation:\n{v1}");
    }
}
