//! End-to-end graph processing pipelines (§3.4, §4.2.2).
//!
//! "Graph analytics on Vertexica is not just running a particular graph
//! algorithm on the bare graph skeleton, rather it includes the end-to-end
//! data processing" — selections/projections before the algorithm, aggregates
//! and histograms after it, and compositions of multiple algorithms. A
//! [`Pipeline`] is an ordered list of named stages (SQL statements or
//! arbitrary closures over the session) with per-stage timing, mirroring the
//! demo GUI's drag-and-drop Dataflow panel.

use std::collections::HashMap;
use std::time::Duration;

use vertexica_common::timer::Stopwatch;
use vertexica_storage::Value;

use crate::error::VertexicaResult;
use crate::session::GraphSession;

/// Shared state flowing between stages.
#[derive(Debug, Default)]
pub struct PipelineContext {
    /// Scalar results stages have published.
    pub values: HashMap<String, Value>,
    /// Row-set results stages have published.
    pub rows: HashMap<String, Vec<Vec<Value>>>,
}

impl PipelineContext {
    pub fn value(&self, key: &str) -> Option<&Value> {
        self.values.get(key)
    }

    pub fn rows_of(&self, key: &str) -> Option<&Vec<Vec<Value>>> {
        self.rows.get(key)
    }
}

type StageFn = Box<dyn Fn(&GraphSession, &mut PipelineContext) -> VertexicaResult<()>>;

struct Stage {
    name: String,
    run: StageFn,
}

/// A composable dataflow of relational and graph stages.
#[derive(Default)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

/// Timing report for a pipeline run.
#[derive(Debug, Clone)]
pub struct StageTiming {
    pub name: String,
    pub elapsed: Duration,
}

impl Pipeline {
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Adds a SQL stage; its result rows are published under the stage name.
    pub fn add_sql(mut self, name: &str, sql: &str) -> Self {
        let sql = sql.to_string();
        let stage_name = name.to_string();
        let key = stage_name.clone();
        self.stages.push(Stage {
            name: stage_name,
            run: Box::new(move |session, ctx| {
                let rows = session.db().query(&sql)?;
                if rows.len() == 1 && rows[0].len() == 1 {
                    ctx.values.insert(key.clone(), rows[0][0].clone());
                }
                ctx.rows.insert(key.clone(), rows);
                Ok(())
            }),
        });
        self
    }

    /// Adds an arbitrary stage (e.g. running a vertex program).
    pub fn add_stage(
        mut self,
        name: &str,
        f: impl Fn(&GraphSession, &mut PipelineContext) -> VertexicaResult<()> + 'static,
    ) -> Self {
        self.stages.push(Stage { name: name.to_string(), run: Box::new(f) });
        self
    }

    pub fn len(&self) -> usize {
        self.stages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Runs all stages in order; fails fast on the first error.
    pub fn run(
        &self,
        session: &GraphSession,
    ) -> VertexicaResult<(PipelineContext, Vec<StageTiming>)> {
        let mut ctx = PipelineContext::default();
        let mut timings = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let sw = Stopwatch::start();
            (stage.run)(session, &mut ctx)?;
            timings.push(StageTiming { name: stage.name.clone(), elapsed: sw.elapsed() });
        }
        Ok((ctx, timings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vertexica_common::graph::EdgeList;
    use vertexica_sql::Database;

    fn session() -> GraphSession {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges(&EdgeList::from_pairs([(0, 1), (0, 2), (1, 2), (2, 0)])).unwrap();
        g
    }

    #[test]
    fn sql_stages_publish_results() {
        let g = session();
        let p = Pipeline::new()
            .add_sql("edge_count", "SELECT COUNT(*) FROM g_edge")
            .add_sql("degrees", "SELECT src, COUNT(*) FROM g_edge GROUP BY src ORDER BY src");
        let (ctx, timings) = p.run(&g).unwrap();
        assert_eq!(ctx.value("edge_count"), Some(&Value::Int(4)));
        assert_eq!(ctx.rows_of("degrees").unwrap().len(), 3);
        assert_eq!(timings.len(), 2);
        assert_eq!(timings[0].name, "edge_count");
    }

    #[test]
    fn custom_stage_reads_previous_results() {
        let g = session();
        let p = Pipeline::new().add_sql("n", "SELECT COUNT(*) FROM g_vertex").add_stage(
            "double",
            |_s, ctx| {
                let n = ctx.value("n").and_then(|v| v.as_int()).unwrap_or(0);
                ctx.values.insert("n2".into(), Value::Int(n * 2));
                Ok(())
            },
        );
        let (ctx, _) = p.run(&g).unwrap();
        assert_eq!(ctx.value("n2"), Some(&Value::Int(6)));
    }

    #[test]
    fn failing_stage_aborts() {
        let g = session();
        let p = Pipeline::new()
            .add_sql("bad", "SELECT * FROM nonexistent")
            .add_sql("never", "SELECT 1");
        assert!(p.run(&g).is_err());
    }

    #[test]
    fn empty_pipeline_is_noop() {
        let g = session();
        let p = Pipeline::new();
        assert!(p.is_empty());
        let (ctx, timings) = p.run(&g).unwrap();
        assert!(ctx.values.is_empty());
        assert!(timings.is_empty());
    }
}
