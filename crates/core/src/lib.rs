//! **Vertexica** — vertex-centric graph analytics on a relational engine.
//!
//! Reproduction of *"Vertexica: Your Relational Friend for Graph Analytics!"*
//! (Jindal et al., VLDB 2014). The system stores graphs in three relational
//! tables (vertex, edge, message), exposes a Pregel-style API
//! ([`vertexica_common::VertexProgram`]) and executes user compute functions
//! *inside* an unmodified SQL engine:
//!
//! * the [`coordinator`] is a stored procedure driving supersteps;
//! * the [`worker`] is a transform UDF (one instance per partition, run on a
//!   pool sized to the core count);
//! * [`input`] assembles worker input either as a **table union** (the
//!   paper's key optimization) or as the naive **3-way join** baseline;
//! * [`apply`] writes superstep results back using the **update-vs-replace**
//!   policy (in-place updates below a change-ratio threshold, left-join +
//!   table-swap replacement above it);
//! * [`checkpoint`] persists superstep state, [`mutation`] provides graph
//!   mutations and temporal snapshots, and [`pipeline`] composes relational
//!   pre-/post-processing with graph algorithms into end-to-end dataflows.

pub mod apply;
pub mod checkpoint;
pub mod config;
pub mod coordinator;
pub mod error;
pub mod input;
pub mod mutation;
pub mod pipeline;
pub mod session;
pub mod shard;
pub mod worker;

pub use config::{InputMode, VertexicaConfig};
pub use coordinator::{run_program, RunStats, SuperstepStats};
pub use error::{VertexicaError, VertexicaResult};
pub use session::GraphSession;
pub use shard::{
    repair_if_needed, resume_sharded, run_sharded, ShardedDatabase, ShardedGraphSession,
};

// Re-export the layers underneath so downstream users need one dependency.
pub use vertexica_common as common;
pub use vertexica_sql as sql;
pub use vertexica_storage as storage;
