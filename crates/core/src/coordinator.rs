//! The coordinator: a stored procedure that drives supersteps.
//!
//! "The coordinator is the driver program that manages the supersteps … We
//! implement the coordinator as a stored procedure; it runs as long as there
//! is any message for the next superstep" (§2.2). Each superstep:
//!
//! 1. assemble worker input ([`crate::input`], union or join mode) — by
//!    default **streamed** chunk-by-chunk straight into the partitioner, so
//!    the full table union never materializes;
//! 2. hash-partition it on vertex id (vertex batching,
//!    [`vertexica_storage::partition::StreamingPartitioner`]);
//! 3. run worker UDFs in parallel, one per partition, on the **shared
//!    runtime pool** ([`vertexica_common::runtime::WorkerPool`]) owned by
//!    the `Database` — the same persistent threads every superstep, resized
//!    once per run to `num_workers`, with per-worker deques and work
//!    stealing smoothing out skewed partitions;
//! 4. apply outputs via update-vs-replace ([`crate::apply`]) — streamed
//!    execution folds each partition's output into the accumulator as the
//!    partition finishes;
//! 5. synchronization barrier, aggregator exchange, halt check.
//!
//! By default steps 1–3 are **fully pipelined**
//! ([`vertexica_sql::Database::run_transform_pipelined`]): a key-column
//! prescan ([`crate::input::partition_row_plan`]) tells each partition how
//! many rows it will receive, assemble chunks are scattered by pool tasks,
//! and a partition's worker UDF launches the moment its last row lands —
//! while assemble is still streaming later chunks. The overlap actually
//! achieved is reported per superstep as
//! [`SuperstepStats::overlap_secs`].
//!
//! Each superstep's [`SuperstepStats`] carries the pipeline's observability:
//! pool queue-wait, steal and nested-scope counts, compute/assemble overlap,
//! plus peak/total in-flight input bytes.
//! `VertexicaConfig::with_pipelined(false)` restores the phased streaming
//! pipeline and `VertexicaConfig::with_streaming(false)` the original
//! materialize-everything pipeline (both kept for ablations and equivalence
//! tests).

use std::sync::Arc;
use vertexica_common::sync::Mutex;

use vertexica_common::hash::FxHashMap;
use vertexica_common::pregel::{InitContext, VertexProgram};
use vertexica_common::timer::Stopwatch;
use vertexica_common::VertexData;
use vertexica_sql::TransformUdf;
use vertexica_storage::partition::{hash_partition, StreamingPartitioner};
use vertexica_storage::{ColumnBuilder, DataType, RecordBatch, Value};

use crate::apply::{
    apply_accumulated, apply_outputs, apply_parallel, OutputAccumulator, ParallelApply,
};
use crate::config::VertexicaConfig;
use crate::error::{VertexicaError, VertexicaResult};
use crate::input::{assemble, assemble_chunks};
use crate::session::{vertex_schema, GraphSession};
use crate::worker::VertexWorker;

/// Per-superstep observability.
#[derive(Debug, Clone)]
pub struct SuperstepStats {
    /// Superstep number (0-based).
    pub superstep: u64,
    /// Messages delivered into the next superstep.
    pub messages: usize,
    /// Vertices whose value or halt state changed.
    pub vertex_changes: usize,
    /// Whether the vertex table was replaced (vs updated in place).
    pub replaced: bool,
    /// Wall-clock seconds assembling + partitioning worker input.
    pub assemble_secs: f64,
    /// Wall-clock seconds running worker UDFs (streaming mode also absorbs
    /// outputs in this window).
    pub compute_secs: f64,
    /// Wall-clock seconds applying outputs (table writes, halt check).
    pub apply_secs: f64,
    /// Width of the apply fan-out: segment buckets built in parallel on the
    /// pool (1 when the serial one-shot SQL apply path ran).
    pub apply_parallelism: usize,
    /// Seconds worker-UDF compute tasks ran **while assemble was still
    /// streaming chunks** — the overlap the pipelined dataflow exists to
    /// create. Zero for the phased pipelines (`pipelined`/`streaming` off)
    /// and on a single-worker pool (nothing is concurrent).
    pub overlap_secs: f64,
    /// Cumulative seconds this superstep's pool tasks spent queued before a
    /// worker picked them up (from [`vertexica_common::runtime::PoolMetrics`]).
    pub queue_wait_secs: f64,
    /// Pool tasks this superstep obtained by work stealing.
    pub steals: u64,
    /// Scopes entered from inside a pool task this superstep (nested
    /// parallelism, e.g. a big partition's worker sorting its input on the
    /// pool), from [`vertexica_common::runtime::PoolMetrics::nested_scopes`].
    pub nested_scopes: u64,
    /// Largest single in-flight input batch, in estimated bytes. Streaming
    /// keeps this far below [`input_bytes`](Self::input_bytes); the
    /// materialized pipeline holds the whole input at once, so there the two
    /// are equal.
    pub peak_batch_bytes: usize,
    /// Total assembled worker input for this superstep, in estimated bytes.
    pub input_bytes: usize,
    /// The most un-emitted **source-scan** data assemble ever held at once,
    /// in estimated bytes. With pull-based scan cursors (the
    /// `streaming_scan` default) this is one in-flight batch per source —
    /// strictly below [`input_bytes`](Self::input_bytes) on any multi-batch
    /// input; the eager scan ablation holds whole tables, and the
    /// materialized pipeline the whole input.
    pub peak_resident_scan_bytes: usize,
    /// Compute partitions dispatched by a **seal** — their last planned row
    /// landed while assemble was still streaming — as opposed to the
    /// end-of-stream drain. Nonzero only for the pipelined dataflow on a
    /// multi-worker pool; with the join-mode row plan, the 3-way-join input
    /// seals partitions too.
    pub early_dispatches: usize,
    /// Write-ahead-log records appended during this superstep (zero on a
    /// non-durable database). The grouped apply commit contributes exactly
    /// one commit record regardless of how many tables it swapped.
    pub wal_records: u64,
    /// Bytes appended to the write-ahead log during this superstep,
    /// including frame headers (zero on a non-durable database).
    pub wal_bytes: u64,
    /// Bytes of table images flushed to segment files during this superstep
    /// — the grouped apply commit writes each swapped table's full physical
    /// image (zero on a non-durable database).
    pub flush_bytes: u64,
    /// Peak bytes of ROS segments resident in the storage buffer pool during
    /// this superstep. With a [`memory
    /// budget`](crate::VertexicaConfig::memory_budget_bytes) configured this
    /// stays at or below the budget (modulo the unevictable pinned/dirty
    /// working set); unbounded runs simply report the high-water mark.
    pub resident_bytes: u64,
    /// Cold ROS segments evicted from the buffer pool to disk twins during
    /// this superstep (zero without a memory budget).
    pub evictions: u64,
    /// Evicted ROS segments reloaded from their `.vxtb` spill images because
    /// a scan pinned them during this superstep (zero without a memory
    /// budget).
    pub reloads: u64,
    /// Messages routed to a *different* shard through a cross-shard outbox
    /// this superstep. Always zero on a single-database run; on a
    /// [`crate::shard::ShardedDatabase`] run the sharded coordinator sums
    /// every shard's outbound count.
    pub remote_messages: u64,
    /// Estimated bytes of cross-shard rows pushed through outboxes this
    /// superstep (zero on a single-database run).
    pub routed_bytes: u64,
    /// Shard load skew: max/mean worker-input rows across shards (1.0 for a
    /// single-database run or a perfectly balanced shard set).
    pub shard_skew: f64,
}

/// Whole-run observability.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Supersteps executed by this run.
    pub supersteps: u64,
    /// Total wall-clock seconds, including initialization.
    pub total_secs: f64,
    /// Messages delivered across all supersteps.
    pub total_messages: u64,
    /// Per-superstep breakdown, in execution order.
    pub per_superstep: Vec<SuperstepStats>,
    /// Final aggregator values.
    pub aggregates: FxHashMap<String, f64>,
}

/// Initializes the vertex table with the program's initial values (and
/// halted=false), and clears the message table.
pub fn initialize_vertices<P: VertexProgram>(
    session: &GraphSession,
    program: &P,
) -> VertexicaResult<u64> {
    let n = session.num_vertices()?;
    initialize_vertices_with_total(session, program, n, Vec::new())?;
    Ok(n)
}

/// [`initialize_vertices`] with the *global* vertex count supplied by the
/// caller. A shard of a [`crate::shard::ShardedDatabase`] holds only its own
/// vertices, but `InitContext::num_vertices` (e.g. PageRank's `1/N` seed)
/// must reflect the whole graph — so the sharded coordinator passes the
/// cross-shard total while each shard initializes just its local rows.
/// Out-degrees are computed locally, which is exact because every vertex's
/// outbound edges are colocated with it by the ownership hash.
///
/// `extra` rides the same grouped catalog commit as the vertex/message
/// initialization — the sharded coordinator passes its freshly stamped
/// shard-meta table here so a crash can never separate an initialized graph
/// from its superstep stamp.
pub(crate) fn initialize_vertices_with_total<P: VertexProgram>(
    session: &GraphSession,
    program: &P,
    num_vertices: u64,
    extra: Vec<(String, vertexica_storage::Table)>,
) -> VertexicaResult<()> {
    let degrees = session.out_degrees()?;
    let n = num_vertices;
    let mut ids = ColumnBuilder::with_capacity(DataType::Int, degrees.len());
    let mut values = ColumnBuilder::with_capacity(DataType::Blob, degrees.len());
    let mut halted = ColumnBuilder::with_capacity(DataType::Bool, degrees.len());
    for (id, deg) in &degrees {
        let init = InitContext { num_vertices: n, out_degree: *deg };
        let v = program.initial_value(*id, &init);
        ids.push_int(*id as i64);
        values.push(Value::Blob(v.to_bytes())).map_err(VertexicaError::from)?;
        halted.push(Value::Bool(false)).map_err(VertexicaError::from)?;
    }
    let batch =
        RecordBatch::new(vertex_schema(), vec![ids.finish(), values.finish(), halted.finish()])
            .map_err(VertexicaError::from)?;

    // Swap in freshly built vertex/message contents as ONE grouped catalog
    // commit (not truncate-then-append): on a durable database both tables
    // ride a single atomic WAL commit record, so recovery can never land
    // between an emptied vertex table and its initialization.
    let catalog = session.db().catalog();
    let mut replacements = Vec::with_capacity(2);
    for (name, init) in [(session.vertex_table(), Some(&batch)), (session.message_table(), None)] {
        let table_ref = catalog.get(&name)?;
        let (tname, schema, options) = {
            let guard = table_ref.read();
            (guard.name().to_string(), guard.schema().clone(), guard.options().clone())
        };
        let mut fresh = vertexica_storage::Table::new(tname, schema, options);
        if let Some(batch) = init {
            fresh.append_batch(batch)?;
        }
        replacements.push((name, fresh));
    }
    replacements.extend(extra);
    catalog.replace_contents_many(replacements)?;
    Ok(())
}

/// Runs a vertex program to completion on a graph session.
pub fn run_program<P: VertexProgram + 'static>(
    session: &GraphSession,
    program: Arc<P>,
    config: &VertexicaConfig,
) -> VertexicaResult<RunStats> {
    let total = Stopwatch::start();
    // Size the shared runtime pool once for the whole run; every superstep
    // reuses the same worker threads. Expression kernels are a process-wide
    // switch — applying it here is safe because both paths are bitwise
    // identical.
    vertexica_sql::expr::set_vectorized_expr(config.vectorized_expr);
    session.db().runtime().resize(config.num_workers);
    // Apply the out-of-core budget before the first checkpoint: the
    // checkpoint gives every cold segment a `.vxtb` spill twin, after which
    // the pool can evict down to the budget.
    if let Some(budget) = config.memory_budget_bytes {
        session.db().catalog().buffer_pool().set_budget(Some(budget));
    }
    let num_vertices = initialize_vertices(session, program.as_ref())?;
    if config.durable {
        // Flush the freshly initialized vertex/message tables so recovery
        // from a crash in superstep 0 starts from the initialized state
        // instead of replaying graph loading.
        session.db().checkpoint()?;
    }
    let stats = superstep_loop(session, program, config, num_vertices, 0, FxHashMap::default())?;
    if config.durable {
        // Land the final state in segment files and truncate the log.
        session.db().checkpoint()?;
    }
    let mut stats = stats;
    stats.total_secs = total.elapsed_secs();
    Ok(stats)
}

/// Resumes a run from a checkpoint previously written by the coordinator
/// (requires `config.checkpoint_dir`).
pub fn resume_program<P: VertexProgram + 'static>(
    session: &GraphSession,
    program: Arc<P>,
    config: &VertexicaConfig,
) -> VertexicaResult<RunStats> {
    let dir = config
        .checkpoint_dir
        .as_ref()
        .ok_or_else(|| VertexicaError::Checkpoint("no checkpoint_dir configured".into()))?;
    let total = Stopwatch::start();
    vertexica_sql::expr::set_vectorized_expr(config.vectorized_expr);
    session.db().runtime().resize(config.num_workers);
    if let Some(budget) = config.memory_budget_bytes {
        session.db().catalog().buffer_pool().set_budget(Some(budget));
    }
    let state = crate::checkpoint::restore(session, dir)?;
    let num_vertices = session.num_vertices()?;
    let mut stats = superstep_loop(
        session,
        program,
        config,
        num_vertices,
        state.superstep + 1,
        state.aggregates,
    )?;
    if config.durable {
        session.db().checkpoint()?;
    }
    stats.total_secs = total.elapsed_secs();
    Ok(stats)
}

/// Wall-clock phases and byte accounting of one superstep's
/// assemble/partition/compute stages. In the pipelined shape
/// `assemble_secs` and `compute_secs` overlap by construction;
/// `overlap_secs` says by how much.
struct ExecProfile {
    assemble_secs: f64,
    compute_secs: f64,
    overlap_secs: f64,
    input_bytes: usize,
    peak_batch_bytes: usize,
    peak_resident_scan_bytes: usize,
    early_dispatches: usize,
}

/// Runs one streaming superstep's assemble → partition → compute stages,
/// delivering each partition's worker output to `sink` as the partition
/// finishes.
///
/// With `config.pipelined` this is the fully overlapped dataflow
/// ([`vertexica_sql::Database::run_transform_pipelined`]): the key-column
/// prescan plans per-partition completion, chunks are scattered by pool
/// tasks, and sealed partitions start computing while assemble still
/// streams. Without it, the phased form: scatter every chunk on this
/// thread, then compute all partitions.
fn run_streaming_compute(
    session: &GraphSession,
    config: &VertexicaConfig,
    worker: &Arc<dyn TransformUdf>,
    sink: &(dyn Fn(usize, Vec<vertexica_storage::RecordBatch>) -> vertexica_sql::SqlResult<()>
          + Sync),
) -> VertexicaResult<ExecProfile> {
    let num_partitions = config.num_partitions.max(1);
    if config.pipelined {
        let plan = crate::input::partition_row_plan(session, config.input_mode, num_partitions)?;
        let report = session.db().run_transform_pipelined(
            worker,
            vec![0],
            num_partitions,
            plan,
            &mut |chunk_sink| {
                assemble_chunks(
                    session,
                    config.input_mode,
                    config.stream_chunk_rows,
                    config.streaming_scan,
                    &mut |chunk| chunk_sink(chunk).map_err(VertexicaError::from),
                )
                .map_err(|e| match e {
                    VertexicaError::Sql(e) => e,
                    other => vertexica_sql::SqlError::Execution(other.to_string()),
                })
            },
            sink,
        )?;
        return Ok(ExecProfile {
            assemble_secs: report.assemble_secs,
            compute_secs: report.compute_secs,
            overlap_secs: report.overlap_secs,
            input_bytes: report.input_bytes,
            peak_batch_bytes: report.peak_chunk_bytes,
            peak_resident_scan_bytes: report.peak_resident_scan_bytes,
            early_dispatches: report.early_dispatches,
        });
    }
    let sw = Stopwatch::start();
    let mut partitioner = StreamingPartitioner::new(vec![0], num_partitions);
    let mut total = 0usize;
    let mut peak = 0usize;
    let peak_resident_scan_bytes = assemble_chunks(
        session,
        config.input_mode,
        config.stream_chunk_rows,
        config.streaming_scan,
        &mut |chunk| {
            let bytes = chunk.estimated_bytes();
            total += bytes;
            peak = peak.max(bytes);
            partitioner.push(&chunk).map_err(VertexicaError::from)
        },
    )?;
    let partitions = partitioner.finish();
    let assemble_secs = sw.elapsed_secs();
    let sw = Stopwatch::start();
    session.db().run_transform_streamed(worker, partitions, sink)?;
    Ok(ExecProfile {
        assemble_secs,
        compute_secs: sw.elapsed_secs(),
        overlap_secs: 0.0,
        input_bytes: total,
        peak_batch_bytes: peak,
        peak_resident_scan_bytes,
        early_dispatches: 0,
    })
}

fn superstep_loop<P: VertexProgram + 'static>(
    session: &GraphSession,
    program: Arc<P>,
    config: &VertexicaConfig,
    num_vertices: u64,
    start_superstep: u64,
    mut prev_aggregates: FxHashMap<String, f64>,
) -> VertexicaResult<RunStats> {
    let mut stats = RunStats::default();
    let max_supersteps = config.max_supersteps.min(program.max_supersteps());
    let mut superstep = start_superstep;

    loop {
        if superstep >= max_supersteps {
            break;
        }
        // Termination: after superstep 0, stop when no messages are pending
        // and every vertex has halted.
        if superstep > start_superstep || start_superstep > 0 {
            let pending = session
                .db()
                .query_int(&format!("SELECT COUNT(*) FROM {}", session.message_table()))?;
            let active = session.db().query_int(&format!(
                "SELECT COUNT(*) FROM {} WHERE halted = FALSE",
                session.vertex_table()
            ))?;
            if pending == 0 && active == 0 {
                break;
            }
        }

        // 1–3. Assemble, partition and compute; 4. apply. Three execution
        // shapes share the apply sinks:
        //
        // * **pipelined** (default): assemble chunks are scattered by pool
        //   tasks and each partition's worker UDF launches the moment the
        //   partition seals — assemble and compute genuinely overlap;
        // * **streamed** (`pipelined` off): assemble scatters into the
        //   partitioner on this thread, then all partitions compute;
        // * **materialized** (`streaming` off): the original
        //   assemble-then-partition-then-compute sequence.
        //
        // Either way, streaming execution folds each partition's output into
        // the apply collector the moment that partition finishes; the table
        // writes happen once at the end.
        let pool_before = session.db().runtime().metrics();
        let dur_before = session.db().durability_stats();
        let buffer_pool = session.db().catalog().buffer_pool().clone();
        buffer_pool.reset_peak();
        let bp_before = buffer_pool.stats();
        let worker: Arc<dyn TransformUdf> = Arc::new(VertexWorker {
            program: program.clone(),
            superstep,
            num_vertices,
            prev_aggregates: Arc::new(prev_aggregates.clone()),
            use_combiner: config.use_combiner,
            pool: Some(session.db().runtime().clone()),
        });
        let (outcome, profile, apply_secs) = if config.streaming && config.parallel_apply {
            // Segment-parallel apply: each partition's output is parsed and
            // canonicalized on the pool worker that finished it; the final
            // table writes are per-bucket segment builds on the same pool,
            // committed by an atomic catalog-level contents swap.
            let apply = ParallelApply::for_program(program.as_ref(), config.num_workers.max(1));
            let profile = run_streaming_compute(session, config, &worker, &|idx, out| {
                apply.absorb(idx, &out).map_err(|e| vertexica_sql::SqlError::Udf(e.to_string()))
            })?;
            let sw = Stopwatch::start();
            let outcome = apply_parallel(session, program.as_ref(), config, apply, num_vertices)?;
            (outcome, profile, sw.elapsed_secs())
        } else if config.streaming {
            let template = OutputAccumulator::for_program(program.as_ref());
            let acc = Mutex::new(template.fork());
            let profile = run_streaming_compute(session, config, &worker, &|idx, out| {
                // Parse outside the shared lock (absorb clones every blob);
                // only the cheap vector merge is serialized.
                let mut local = template.fork();
                local.absorb(idx, &out).map_err(|e| vertexica_sql::SqlError::Udf(e.to_string()))?;
                acc.lock().merge(local);
                Ok(())
            })?;
            let sw = Stopwatch::start();
            let acc = acc.into_inner();
            let outcome = apply_accumulated(session, program.as_ref(), config, acc, num_vertices)?;
            (outcome, profile, sw.elapsed_secs())
        } else {
            let sw = Stopwatch::start();
            let input = assemble(session, config.input_mode, config.streaming_scan)?;
            let bytes: usize = input.iter().map(|b| b.estimated_bytes()).sum();
            let partitions = if config.num_partitions <= 1 {
                vec![input]
            } else {
                hash_partition(&input, &[0], config.num_partitions)?
            };
            let assemble_secs = sw.elapsed_secs();
            let sw = Stopwatch::start();
            let outputs = session.db().run_transform_partitions(&worker, partitions)?;
            let profile = ExecProfile {
                assemble_secs,
                compute_secs: sw.elapsed_secs(),
                overlap_secs: 0.0,
                // Fully materialized: the whole input is one in-flight unit.
                input_bytes: bytes,
                peak_batch_bytes: bytes,
                peak_resident_scan_bytes: bytes,
                early_dispatches: 0,
            };
            let sw = Stopwatch::start();
            let outcome = apply_outputs(session, program.as_ref(), config, outputs, num_vertices)?;
            (outcome, profile, sw.elapsed_secs())
        };
        let pool_delta = session.db().runtime().metrics().delta_since(&pool_before);
        let (wal_records, wal_bytes, flush_bytes) =
            match (dur_before, session.db().durability_stats()) {
                (Some(before), Some(after)) => (
                    after.wal_records - before.wal_records,
                    after.wal_bytes - before.wal_bytes,
                    after.flush_bytes - before.flush_bytes,
                ),
                _ => (0, 0, 0),
            };
        let bp_after = buffer_pool.stats();

        prev_aggregates = outcome.aggregates.clone();
        stats.per_superstep.push(SuperstepStats {
            superstep,
            messages: outcome.messages,
            vertex_changes: outcome.vertex_changes,
            replaced: outcome.replaced,
            assemble_secs: profile.assemble_secs,
            compute_secs: profile.compute_secs,
            apply_secs,
            apply_parallelism: outcome.apply_parallelism,
            overlap_secs: profile.overlap_secs,
            queue_wait_secs: pool_delta.queue_wait_secs,
            steals: pool_delta.tasks_stolen,
            nested_scopes: pool_delta.nested_scopes,
            peak_batch_bytes: profile.peak_batch_bytes,
            input_bytes: profile.input_bytes,
            peak_resident_scan_bytes: profile.peak_resident_scan_bytes,
            early_dispatches: profile.early_dispatches,
            wal_records,
            wal_bytes,
            flush_bytes,
            resident_bytes: buffer_pool.peak_resident_bytes(),
            evictions: bp_after.evictions - bp_before.evictions,
            reloads: bp_after.reloads - bp_before.reloads,
            remote_messages: 0,
            routed_bytes: 0,
            shard_skew: 1.0,
        });
        stats.total_messages += outcome.messages as u64;
        stats.supersteps = superstep + 1 - start_superstep;
        stats.aggregates = outcome.aggregates.clone();

        // 5. Checkpoint if configured.
        if let (Some(every), Some(dir)) = (config.checkpoint_every, &config.checkpoint_dir) {
            if (superstep + 1).is_multiple_of(every) {
                crate::checkpoint::save(session, dir, superstep, &prev_aggregates)?;
            }
        }

        if outcome.messages == 0 && outcome.all_halted {
            break;
        }
        superstep += 1;
    }
    Ok(stats)
}

/// Registers a vertex program as a named stored procedure so it can be
/// invoked with `db.call_procedure(name, &[])` — the deployment shape the
/// paper describes (coordinator = stored procedure inside the database).
/// Returns the procedure name.
pub fn register_as_procedure<P: VertexProgram + 'static>(
    session: &GraphSession,
    program: Arc<P>,
    config: VertexicaConfig,
) -> String {
    let proc_name = format!("vertexica_{}_{}", session.name(), program.name());
    let session = session.clone();
    session.db().clone().register_procedure(
        &proc_name,
        Arc::new(move |_db, _args| {
            let stats = run_program(&session, program.clone(), &config)
                .map_err(|e| vertexica_sql::SqlError::Execution(e.to_string()))?;
            Ok(Value::Int(stats.supersteps as i64))
        }),
    );
    proc_name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InputMode;
    use vertexica_common::graph::EdgeList;
    use vertexica_common::pregel::{VertexContext, VertexContextExt};
    use vertexica_common::VertexId;
    use vertexica_sql::Database;

    /// HashMax connected components: every vertex adopts the largest id seen.
    struct MaxId;
    impl VertexProgram for MaxId {
        type Value = u64;
        type Message = u64;

        fn initial_value(&self, id: VertexId, _init: &InitContext) -> u64 {
            id
        }

        fn compute(&self, ctx: &mut dyn VertexContext<u64, u64>, messages: &[u64]) {
            let best = messages.iter().copied().fold(*ctx.value(), u64::max);
            if best > *ctx.value() || ctx.superstep() == 0 {
                ctx.set_value(best);
                ctx.send_to_all_neighbors(best);
            }
            ctx.vote_to_halt();
        }

        fn combine(&self, a: &u64, b: &u64) -> Option<u64> {
            Some((*a).max(*b))
        }

        fn name(&self) -> &'static str {
            "maxid"
        }
    }

    fn two_components() -> EdgeList {
        // Component A: 0-1-2 (undirected), component B: 3-4.
        EdgeList::from_pairs([(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3)])
    }

    fn run_maxid(config: VertexicaConfig) -> Vec<(VertexId, u64)> {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges(&two_components()).unwrap();
        let stats = run_program(&g, Arc::new(MaxId), &config).unwrap();
        assert!(stats.supersteps >= 2);
        g.vertex_values().unwrap()
    }

    #[test]
    fn converges_to_component_max() {
        let vals = run_maxid(VertexicaConfig::default().with_partitions(4).with_workers(2));
        assert_eq!(vals, vec![(0, 2), (1, 2), (2, 2), (3, 4), (4, 4)]);
    }

    #[test]
    fn single_partition_single_worker_same_answer() {
        let vals = run_maxid(VertexicaConfig::default().with_partitions(1).with_workers(1));
        assert_eq!(vals, vec![(0, 2), (1, 2), (2, 2), (3, 4), (4, 4)]);
    }

    #[test]
    fn join_input_mode_same_answer() {
        let vals = run_maxid(VertexicaConfig::default().with_input_mode(InputMode::ThreeWayJoin));
        assert_eq!(vals, vec![(0, 2), (1, 2), (2, 2), (3, 4), (4, 4)]);
    }

    #[test]
    fn no_combiner_same_answer() {
        let vals = run_maxid(VertexicaConfig::default().with_combiner(false));
        assert_eq!(vals, vec![(0, 2), (1, 2), (2, 2), (3, 4), (4, 4)]);
    }

    #[test]
    fn forced_replace_and_forced_update_agree() {
        let a = run_maxid(VertexicaConfig::default().with_replace_threshold(0.0));
        let b = run_maxid(VertexicaConfig::default().with_replace_threshold(1.0));
        assert_eq!(a, b);
    }

    #[test]
    fn max_supersteps_caps_run() {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges(&two_components()).unwrap();
        let stats =
            run_program(&g, Arc::new(MaxId), &VertexicaConfig::default().with_max_supersteps(1))
                .unwrap();
        assert_eq!(stats.supersteps, 1);
    }

    #[test]
    fn stats_track_messages_and_replacement() {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges(&two_components()).unwrap();
        let stats = run_program(
            &g,
            Arc::new(MaxId),
            &VertexicaConfig::default().with_replace_threshold(0.0),
        )
        .unwrap();
        assert!(stats.total_messages > 0);
        assert!(stats.per_superstep[0].replaced);
        assert!(stats.per_superstep[0].messages > 0);
        // Final superstep emits nothing.
        assert_eq!(stats.per_superstep.last().unwrap().messages, 0);
    }

    #[test]
    fn coordinator_shares_the_database_pool() {
        let db = Arc::new(Database::new());
        let pool = db.runtime().clone();
        let g = GraphSession::create(db.clone(), "g").unwrap();
        g.load_edges(&two_components()).unwrap();
        run_program(&g, Arc::new(MaxId), &VertexicaConfig::default().with_workers(3)).unwrap();
        // The run resized the *shared* pool rather than creating its own…
        assert_eq!(pool.size(), 3);
        assert!(Arc::ptr_eq(&pool, db.runtime()));
        // …and a second run on the same database reuses it at a new size.
        run_program(&g, Arc::new(MaxId), &VertexicaConfig::default().with_workers(2)).unwrap();
        assert_eq!(pool.size(), 2);
    }

    #[test]
    fn runs_as_stored_procedure() {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db.clone(), "g").unwrap();
        g.load_edges(&two_components()).unwrap();
        let name = register_as_procedure(&g, Arc::new(MaxId), VertexicaConfig::default());
        let out = db.call_procedure(&name, &[]).unwrap();
        let Value::Int(supersteps) = out else { panic!() };
        assert!(supersteps >= 2);
        let vals: Vec<(VertexId, u64)> = g.vertex_values().unwrap();
        assert_eq!(vals[0], (0, 2));
    }
}
