//! The coordinator: a stored procedure that drives supersteps.
//!
//! "The coordinator is the driver program that manages the supersteps … We
//! implement the coordinator as a stored procedure; it runs as long as there
//! is any message for the next superstep" (§2.2). Each superstep:
//!
//! 1. assemble worker input ([`crate::input`], union or join mode);
//! 2. hash-partition it on vertex id (vertex batching);
//! 3. run worker UDFs in parallel, one per partition, on the **shared
//!    runtime pool** ([`vertexica_common::runtime::WorkerPool`]) owned by
//!    the `Database` — the same persistent threads every superstep, resized
//!    once per run to `num_workers`;
//! 4. apply outputs via update-vs-replace ([`crate::apply`]);
//! 5. synchronization barrier, aggregator exchange, halt check.

use std::sync::Arc;

use vertexica_common::hash::FxHashMap;
use vertexica_common::pregel::{InitContext, VertexProgram};
use vertexica_common::timer::Stopwatch;
use vertexica_common::VertexData;
use vertexica_sql::TransformUdf;
use vertexica_storage::partition::hash_partition;
use vertexica_storage::{ColumnBuilder, DataType, RecordBatch, Value};

use crate::apply::apply_outputs;
use crate::config::VertexicaConfig;
use crate::error::{VertexicaError, VertexicaResult};
use crate::input::assemble;
use crate::session::{vertex_schema, GraphSession};
use crate::worker::VertexWorker;

/// Per-superstep observability.
#[derive(Debug, Clone)]
pub struct SuperstepStats {
    pub superstep: u64,
    pub messages: usize,
    pub vertex_changes: usize,
    pub replaced: bool,
    pub assemble_secs: f64,
    pub compute_secs: f64,
    pub apply_secs: f64,
}

/// Whole-run observability.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    pub supersteps: u64,
    pub total_secs: f64,
    pub total_messages: u64,
    pub per_superstep: Vec<SuperstepStats>,
    /// Final aggregator values.
    pub aggregates: FxHashMap<String, f64>,
}

/// Initializes the vertex table with the program's initial values (and
/// halted=false), and clears the message table.
pub fn initialize_vertices<P: VertexProgram>(
    session: &GraphSession,
    program: &P,
) -> VertexicaResult<u64> {
    let degrees = session.out_degrees()?;
    let n = degrees.len() as u64;
    let mut ids = ColumnBuilder::with_capacity(DataType::Int, degrees.len());
    let mut values = ColumnBuilder::with_capacity(DataType::Blob, degrees.len());
    let mut halted = ColumnBuilder::with_capacity(DataType::Bool, degrees.len());
    for (id, deg) in &degrees {
        let init = InitContext { num_vertices: n, out_degree: *deg };
        let v = program.initial_value(*id, &init);
        ids.push_int(*id as i64);
        values.push(Value::Blob(v.to_bytes())).map_err(VertexicaError::from)?;
        halted.push(Value::Bool(false)).map_err(VertexicaError::from)?;
    }
    let batch =
        RecordBatch::new(vertex_schema(), vec![ids.finish(), values.finish(), halted.finish()])
            .map_err(VertexicaError::from)?;

    let vertex = session.db().catalog().get(&session.vertex_table())?;
    {
        let mut guard = vertex.write();
        guard.truncate();
        guard.append_batch(&batch)?;
    }
    let message = session.db().catalog().get(&session.message_table())?;
    message.write().truncate();
    Ok(n)
}

/// Runs a vertex program to completion on a graph session.
pub fn run_program<P: VertexProgram + 'static>(
    session: &GraphSession,
    program: Arc<P>,
    config: &VertexicaConfig,
) -> VertexicaResult<RunStats> {
    let total = Stopwatch::start();
    // Size the shared runtime pool once for the whole run; every superstep
    // reuses the same worker threads.
    session.db().runtime().resize(config.num_workers);
    let num_vertices = initialize_vertices(session, program.as_ref())?;
    let stats = superstep_loop(session, program, config, num_vertices, 0, FxHashMap::default())?;
    let mut stats = stats;
    stats.total_secs = total.elapsed_secs();
    Ok(stats)
}

/// Resumes a run from a checkpoint previously written by the coordinator
/// (requires `config.checkpoint_dir`).
pub fn resume_program<P: VertexProgram + 'static>(
    session: &GraphSession,
    program: Arc<P>,
    config: &VertexicaConfig,
) -> VertexicaResult<RunStats> {
    let dir = config
        .checkpoint_dir
        .as_ref()
        .ok_or_else(|| VertexicaError::Checkpoint("no checkpoint_dir configured".into()))?;
    let total = Stopwatch::start();
    session.db().runtime().resize(config.num_workers);
    let state = crate::checkpoint::restore(session, dir)?;
    let num_vertices = session.num_vertices()?;
    let mut stats = superstep_loop(
        session,
        program,
        config,
        num_vertices,
        state.superstep + 1,
        state.aggregates,
    )?;
    stats.total_secs = total.elapsed_secs();
    Ok(stats)
}

fn superstep_loop<P: VertexProgram + 'static>(
    session: &GraphSession,
    program: Arc<P>,
    config: &VertexicaConfig,
    num_vertices: u64,
    start_superstep: u64,
    mut prev_aggregates: FxHashMap<String, f64>,
) -> VertexicaResult<RunStats> {
    let mut stats = RunStats::default();
    let max_supersteps = config.max_supersteps.min(program.max_supersteps());
    let mut superstep = start_superstep;

    loop {
        if superstep >= max_supersteps {
            break;
        }
        // Termination: after superstep 0, stop when no messages are pending
        // and every vertex has halted.
        if superstep > start_superstep || start_superstep > 0 {
            let pending = session
                .db()
                .query_int(&format!("SELECT COUNT(*) FROM {}", session.message_table()))?;
            let active = session.db().query_int(&format!(
                "SELECT COUNT(*) FROM {} WHERE halted = FALSE",
                session.vertex_table()
            ))?;
            if pending == 0 && active == 0 {
                break;
            }
        }

        // 1. Assemble input.
        let sw = Stopwatch::start();
        let input = assemble(session, config.input_mode)?;
        let assemble_secs = sw.elapsed_secs();

        // 2. Vertex batching: hash-partition on vid.
        let sw = Stopwatch::start();
        let partitions = if config.num_partitions <= 1 {
            vec![input]
        } else {
            hash_partition(&input, &[0], config.num_partitions)?
        };

        // 3. Parallel workers.
        let worker: Arc<dyn TransformUdf> = Arc::new(VertexWorker {
            program: program.clone(),
            superstep,
            num_vertices,
            prev_aggregates: Arc::new(prev_aggregates.clone()),
            use_combiner: config.use_combiner,
        });
        let outputs = session.db().run_transform_partitions(&worker, partitions)?;
        let compute_secs = sw.elapsed_secs();

        // 4. Apply (update-vs-replace) + barrier.
        let sw = Stopwatch::start();
        let outcome = apply_outputs(session, program.as_ref(), config, outputs, num_vertices)?;
        let apply_secs = sw.elapsed_secs();

        prev_aggregates = outcome.aggregates.clone();
        stats.per_superstep.push(SuperstepStats {
            superstep,
            messages: outcome.messages,
            vertex_changes: outcome.vertex_changes,
            replaced: outcome.replaced,
            assemble_secs,
            compute_secs,
            apply_secs,
        });
        stats.total_messages += outcome.messages as u64;
        stats.supersteps = superstep + 1 - start_superstep;
        stats.aggregates = outcome.aggregates.clone();

        // 5. Checkpoint if configured.
        if let (Some(every), Some(dir)) = (config.checkpoint_every, &config.checkpoint_dir) {
            if (superstep + 1).is_multiple_of(every) {
                crate::checkpoint::save(session, dir, superstep, &prev_aggregates)?;
            }
        }

        if outcome.messages == 0 && outcome.all_halted {
            break;
        }
        superstep += 1;
    }
    Ok(stats)
}

/// Registers a vertex program as a named stored procedure so it can be
/// invoked with `db.call_procedure(name, &[])` — the deployment shape the
/// paper describes (coordinator = stored procedure inside the database).
/// Returns the procedure name.
pub fn register_as_procedure<P: VertexProgram + 'static>(
    session: &GraphSession,
    program: Arc<P>,
    config: VertexicaConfig,
) -> String {
    let proc_name = format!("vertexica_{}_{}", session.name(), program.name());
    let session = session.clone();
    session.db().clone().register_procedure(
        &proc_name,
        Arc::new(move |_db, _args| {
            let stats = run_program(&session, program.clone(), &config)
                .map_err(|e| vertexica_sql::SqlError::Execution(e.to_string()))?;
            Ok(Value::Int(stats.supersteps as i64))
        }),
    );
    proc_name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InputMode;
    use vertexica_common::graph::EdgeList;
    use vertexica_common::pregel::{VertexContext, VertexContextExt};
    use vertexica_common::VertexId;
    use vertexica_sql::Database;

    /// HashMax connected components: every vertex adopts the largest id seen.
    struct MaxId;
    impl VertexProgram for MaxId {
        type Value = u64;
        type Message = u64;

        fn initial_value(&self, id: VertexId, _init: &InitContext) -> u64 {
            id
        }

        fn compute(&self, ctx: &mut dyn VertexContext<u64, u64>, messages: &[u64]) {
            let best = messages.iter().copied().fold(*ctx.value(), u64::max);
            if best > *ctx.value() || ctx.superstep() == 0 {
                ctx.set_value(best);
                ctx.send_to_all_neighbors(best);
            }
            ctx.vote_to_halt();
        }

        fn combine(&self, a: &u64, b: &u64) -> Option<u64> {
            Some((*a).max(*b))
        }

        fn name(&self) -> &'static str {
            "maxid"
        }
    }

    fn two_components() -> EdgeList {
        // Component A: 0-1-2 (undirected), component B: 3-4.
        EdgeList::from_pairs([(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3)])
    }

    fn run_maxid(config: VertexicaConfig) -> Vec<(VertexId, u64)> {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges(&two_components()).unwrap();
        let stats = run_program(&g, Arc::new(MaxId), &config).unwrap();
        assert!(stats.supersteps >= 2);
        g.vertex_values().unwrap()
    }

    #[test]
    fn converges_to_component_max() {
        let vals = run_maxid(VertexicaConfig::default().with_partitions(4).with_workers(2));
        assert_eq!(vals, vec![(0, 2), (1, 2), (2, 2), (3, 4), (4, 4)]);
    }

    #[test]
    fn single_partition_single_worker_same_answer() {
        let vals = run_maxid(VertexicaConfig::default().with_partitions(1).with_workers(1));
        assert_eq!(vals, vec![(0, 2), (1, 2), (2, 2), (3, 4), (4, 4)]);
    }

    #[test]
    fn join_input_mode_same_answer() {
        let vals = run_maxid(VertexicaConfig::default().with_input_mode(InputMode::ThreeWayJoin));
        assert_eq!(vals, vec![(0, 2), (1, 2), (2, 2), (3, 4), (4, 4)]);
    }

    #[test]
    fn no_combiner_same_answer() {
        let vals = run_maxid(VertexicaConfig::default().with_combiner(false));
        assert_eq!(vals, vec![(0, 2), (1, 2), (2, 2), (3, 4), (4, 4)]);
    }

    #[test]
    fn forced_replace_and_forced_update_agree() {
        let a = run_maxid(VertexicaConfig::default().with_replace_threshold(0.0));
        let b = run_maxid(VertexicaConfig::default().with_replace_threshold(1.0));
        assert_eq!(a, b);
    }

    #[test]
    fn max_supersteps_caps_run() {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges(&two_components()).unwrap();
        let stats =
            run_program(&g, Arc::new(MaxId), &VertexicaConfig::default().with_max_supersteps(1))
                .unwrap();
        assert_eq!(stats.supersteps, 1);
    }

    #[test]
    fn stats_track_messages_and_replacement() {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges(&two_components()).unwrap();
        let stats = run_program(
            &g,
            Arc::new(MaxId),
            &VertexicaConfig::default().with_replace_threshold(0.0),
        )
        .unwrap();
        assert!(stats.total_messages > 0);
        assert!(stats.per_superstep[0].replaced);
        assert!(stats.per_superstep[0].messages > 0);
        // Final superstep emits nothing.
        assert_eq!(stats.per_superstep.last().unwrap().messages, 0);
    }

    #[test]
    fn coordinator_shares_the_database_pool() {
        let db = Arc::new(Database::new());
        let pool = db.runtime().clone();
        let g = GraphSession::create(db.clone(), "g").unwrap();
        g.load_edges(&two_components()).unwrap();
        run_program(&g, Arc::new(MaxId), &VertexicaConfig::default().with_workers(3)).unwrap();
        // The run resized the *shared* pool rather than creating its own…
        assert_eq!(pool.size(), 3);
        assert!(Arc::ptr_eq(&pool, db.runtime()));
        // …and a second run on the same database reuses it at a new size.
        run_program(&g, Arc::new(MaxId), &VertexicaConfig::default().with_workers(2)).unwrap();
        assert_eq!(pool.size(), 2);
    }

    #[test]
    fn runs_as_stored_procedure() {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db.clone(), "g").unwrap();
        g.load_edges(&two_components()).unwrap();
        let name = register_as_procedure(&g, Arc::new(MaxId), VertexicaConfig::default());
        let out = db.call_procedure(&name, &[]).unwrap();
        let Value::Int(supersteps) = out else { panic!() };
        assert!(supersteps >= 2);
        let vals: Vec<(VertexId, u64)> = g.vertex_values().unwrap();
        assert_eq!(vals[0], (0, 2));
    }
}
