//! Graph mutations and temporal snapshots (§3.3, "Dynamic Graph Analyses").
//!
//! "Vertexica is naturally suited to handle updates" — mutations are plain
//! DML against the vertex/edge tables, something "graph processing systems,
//! such as Giraph, have no clear method of" doing. Temporal analysis runs an
//! algorithm over [`GraphSession::snapshot_at`] materializations of the edge table at
//! different timestamps (edges carry a `created` column) and compares results
//! relationally — e.g. "which node-pairs' shortest paths decreased in the
//! last year".

use vertexica_common::graph::VertexId;

use crate::error::VertexicaResult;
use crate::session::GraphSession;

/// Mutation operations on a live graph.
impl GraphSession {
    /// Adds a vertex (no-op value; halted=false).
    pub fn add_vertex(&self, id: VertexId) -> VertexicaResult<()> {
        self.db().execute(&format!(
            "INSERT INTO {} (id, halted) VALUES ({id}, FALSE)",
            self.vertex_table()
        ))?;
        Ok(())
    }

    /// Removes a vertex and every edge touching it.
    pub fn remove_vertex(&self, id: VertexId) -> VertexicaResult<usize> {
        self.db().execute(&format!(
            "DELETE FROM {} WHERE src = {id} OR dst = {id}",
            self.edge_table()
        ))?;
        let n = self
            .db()
            .execute(&format!("DELETE FROM {} WHERE id = {id}", self.vertex_table()))?
            .affected();
        Ok(n)
    }

    /// Adds an edge with metadata.
    pub fn add_edge(
        &self,
        src: VertexId,
        dst: VertexId,
        weight: f64,
        created: i64,
        etype: Option<&str>,
    ) -> VertexicaResult<()> {
        let etype_sql = match etype {
            Some(t) => format!("'{}'", t.replace('\'', "''")),
            None => "NULL".to_string(),
        };
        self.db().execute(&format!(
            "INSERT INTO {} VALUES ({src}, {dst}, {weight}, {created}, {etype_sql})",
            self.edge_table()
        ))?;
        Ok(())
    }

    /// Removes all edges `src -> dst`; returns how many were removed.
    pub fn remove_edge(&self, src: VertexId, dst: VertexId) -> VertexicaResult<usize> {
        Ok(self
            .db()
            .execute(&format!(
                "DELETE FROM {} WHERE src = {src} AND dst = {dst}",
                self.edge_table()
            ))?
            .affected())
    }

    /// Reweights all edges `src -> dst`.
    pub fn update_edge_weight(
        &self,
        src: VertexId,
        dst: VertexId,
        weight: f64,
    ) -> VertexicaResult<usize> {
        Ok(self
            .db()
            .execute(&format!(
                "UPDATE {} SET weight = {weight} WHERE src = {src} AND dst = {dst}",
                self.edge_table()
            ))?
            .affected())
    }

    /// Materializes the graph as it existed at time `ts`: a new graph session
    /// `<snapshot_name>` whose edge table holds only edges with
    /// `created <= ts`. Vertices are copied wholesale (values reset).
    pub fn snapshot_at(&self, ts: i64, snapshot_name: &str) -> VertexicaResult<GraphSession> {
        let snap = GraphSession::create(self.db().clone(), snapshot_name)?;
        self.db().execute(&format!(
            "INSERT INTO {sv} SELECT id, CAST(NULL AS VARBINARY), FALSE FROM {v}",
            sv = snap.vertex_table(),
            v = self.vertex_table()
        ))?;
        self.db().execute(&format!(
            "INSERT INTO {se} SELECT src, dst, weight, created, etype FROM {e} \
             WHERE created <= {ts}",
            se = snap.edge_table(),
            e = self.edge_table()
        ))?;
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vertexica_common::graph::{Edge, EdgeList};
    use vertexica_sql::Database;

    fn session() -> GraphSession {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges(&EdgeList::from_pairs([(0, 1), (1, 2)])).unwrap();
        g
    }

    #[test]
    fn add_and_remove_vertex_cascades() {
        let g = session();
        g.add_vertex(10).unwrap();
        assert_eq!(g.num_vertices().unwrap(), 4);
        g.add_edge(10, 0, 1.0, 0, None).unwrap();
        g.add_edge(1, 10, 1.0, 0, None).unwrap();
        assert_eq!(g.num_edges().unwrap(), 4);
        g.remove_vertex(10).unwrap();
        assert_eq!(g.num_vertices().unwrap(), 3);
        assert_eq!(g.num_edges().unwrap(), 2);
    }

    #[test]
    fn edge_mutations() {
        let g = session();
        g.add_edge(2, 0, 5.0, 42, Some("family")).unwrap();
        assert_eq!(g.num_edges().unwrap(), 3);
        assert_eq!(g.update_edge_weight(2, 0, 7.5).unwrap(), 1);
        let w = g
            .db()
            .query_scalar(&format!(
                "SELECT weight FROM {} WHERE src = 2 AND dst = 0",
                g.edge_table()
            ))
            .unwrap();
        assert_eq!(w, vertexica_storage::Value::Float(7.5));
        assert_eq!(g.remove_edge(2, 0).unwrap(), 1);
        assert_eq!(g.num_edges().unwrap(), 2);
    }

    #[test]
    fn etype_quoting_is_safe() {
        let g = session();
        g.add_edge(0, 2, 1.0, 0, Some("it's")).unwrap();
        let n = g
            .db()
            .query_int(&format!("SELECT COUNT(*) FROM {} WHERE etype = 'it''s'", g.edge_table()))
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn snapshot_filters_by_time() {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges_with_metadata(
            &[
                (Edge::new(0, 1), 100, None),
                (Edge::new(1, 2), 200, None),
                (Edge::new(2, 0), 300, None),
            ],
            3,
        )
        .unwrap();
        let old = g.snapshot_at(150, "g_t150").unwrap();
        assert_eq!(old.num_vertices().unwrap(), 3);
        assert_eq!(old.num_edges().unwrap(), 1);
        let newer = g.snapshot_at(250, "g_t250").unwrap();
        assert_eq!(newer.num_edges().unwrap(), 2);
    }
}
