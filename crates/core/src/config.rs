//! Runtime configuration for the vertex-centric engine.

use std::path::PathBuf;

/// How worker input is assembled from the vertex/edge/message tables (§2.3,
/// "Table Unions").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputMode {
    /// Rename the three tables to a common schema and UNION them — the
    /// paper's optimization.
    TableUnion,
    /// The naive 3-way join baseline the paper argues against (kept for the
    /// ablation benchmark).
    ThreeWayJoin,
}

/// Tuning knobs for a vertex-centric run. Defaults follow the paper:
/// workers = cores, a fixed partition count for vertex batching, table-union
/// input, and threshold-based update-vs-replace.
#[derive(Debug, Clone)]
pub struct VertexicaConfig {
    /// Parallel worker UDF instances ("as many workers as the number of
    /// cores").
    pub num_workers: usize,
    /// Hash partitions for vertex batching. More partitions = smaller
    /// batches; the extreme (one vertex per partition) degenerates to one UDF
    /// call per vertex, which §2.3 warns against.
    pub num_partitions: usize,
    /// Worker input assembly strategy.
    pub input_mode: InputMode,
    /// If the fraction of updated vertices is **at or above** this threshold,
    /// rebuild the vertex table via left join + swap ("replace"); below it,
    /// update in place.
    pub replace_threshold: f64,
    /// Fold messages to the same recipient with the program's combiner (when
    /// the program provides one).
    pub use_combiner: bool,
    /// Stream the superstep hot path: assemble worker input chunk-by-chunk
    /// straight into the hash partitioner (never materializing the full
    /// table union alongside its partitioned copy) and fold worker outputs
    /// into the apply accumulator as each partition finishes. Disable to get
    /// the original materialize-everything pipeline, kept for ablation and
    /// equivalence testing.
    pub streaming: bool,
    /// Parallelize the apply stage: parse each partition's worker output on
    /// the pool worker that finished it, then build the new vertex/message
    /// table **segments** in parallel and commit them with an atomic
    /// catalog-level contents swap — instead of folding everything into one
    /// accumulator and issuing single-threaded one-shot SQL table
    /// replacements. Results are bitwise-identical either way (proven by the
    /// config-matrix equivalence harness). Defaults to on; the environment
    /// variable `VERTEXICA_PARALLEL_APPLY=0` flips the *default* off (for CI
    /// ablation runs), while [`VertexicaConfig::with_parallel_apply`] always
    /// wins.
    pub parallel_apply: bool,
    /// Fully pipeline the superstep (requires [`streaming`](Self::streaming)):
    /// every assemble chunk is scattered by a pool task, a cheap key-column
    /// prescan tells each compute partition how many rows it will receive,
    /// and the moment a partition's last row lands its worker-UDF task is
    /// launched — while assemble is still streaming later chunks. Results
    /// are bitwise-identical to the phased pipelines (the config-matrix
    /// harness proves all eight {streaming} × {parallel apply} ×
    /// {pipelined} cells agree). Defaults to on; the environment variable
    /// `VERTEXICA_PIPELINED=0` flips the *default* off (for CI ablation
    /// runs), while [`VertexicaConfig::with_pipelined`] always wins.
    pub pipelined: bool,
    /// Upper bound on rows per streamed assemble chunk (default
    /// [`crate::input::STREAM_CHUNK_ROWS`]). Smaller chunks bound peak
    /// in-flight bytes tighter and give the pipelined dispatcher more
    /// scatter granularity; larger chunks amortize per-chunk overhead.
    pub stream_chunk_rows: usize,
    /// Pull the SQL scans feeding assemble through per-segment
    /// [`vertexica_sql::Database::scan_cursor`]s instead of materializing
    /// every segment batch up front, and drive the 3-way-join input mode
    /// through the engine's streaming hash join (build sides hashed once,
    /// vertex probe batches pulled one at a time) — which also lets the
    /// join mode plan per-partition row counts and seal partitions like the
    /// direct-scan mode. A superstep's transient scan footprint drops to
    /// one in-flight batch per source
    /// ([`crate::coordinator::SuperstepStats::peak_resident_scan_bytes`]
    /// proves it). Results are bitwise-identical either way (the
    /// config-matrix harness covers the axis). Defaults to on; the
    /// environment variable `VERTEXICA_STREAM_SCAN=0` flips the *default*
    /// off (for CI ablation runs), while
    /// [`VertexicaConfig::with_streaming_scan`] always wins.
    pub streaming_scan: bool,
    /// Evaluate SQL expressions with the typed slice kernels in
    /// `vertexica_sql::expr` (Int/Float arithmetic and comparisons over raw
    /// slices, bitmap-native three-valued AND/OR/NOT, columnar
    /// IsNull/InList/CASE) instead of the `Value`-per-row fallback loop.
    /// Results are bitwise-identical either way (the config-matrix harness
    /// covers the axis; a property test pins kernels ≡ row loop over random
    /// expression trees). Defaults to on; the environment variable
    /// `VERTEXICA_VECTOR_EXPR=0` flips the *default* off (for CI ablation
    /// runs), while [`VertexicaConfig::with_vectorized_expr`] always wins.
    pub vectorized_expr: bool,
    /// Run against a **durable** database: the coordinator checkpoints the
    /// write-ahead-logged catalog before the first superstep and after the
    /// run, so a crash at any point recovers to a committed superstep
    /// boundary (every apply already rides one atomic WAL commit record).
    /// Meaningless (and harmless) on an in-memory
    /// [`vertexica_sql::Database::new`] database — checkpointing a
    /// non-durable catalog is a no-op. Defaults to **off**; the environment
    /// variable `VERTEXICA_DURABLE=1` flips the default on (the hook CI and
    /// the cross-engine harness use to run every algorithm against a
    /// disk-backed database), while [`VertexicaConfig::with_durable`]
    /// always wins.
    pub durable: bool,
    /// Byte budget for the storage-layer segment buffer pool: cold ROS
    /// segments beyond this budget are evicted (clock / second-chance) once
    /// they have a checkpointed `.vxtb` spill image, and reloaded on demand
    /// when a scan pins them — so datasets whose segment bytes exceed RAM
    /// still complete, bitwise-identical to the unbounded run (proven by the
    /// cross-engine equivalence harness). `None` = unbounded (the default);
    /// the environment variable `VERTEXICA_MEMORY_BUDGET` (bytes, with
    /// optional `k`/`kb`/`m`/`mb`/`g`/`gb` suffix) sets the *default*, while
    /// [`VertexicaConfig::with_memory_budget`] always wins. Only effective on
    /// a durable database — without spill images nothing is evictable.
    pub memory_budget_bytes: Option<usize>,
    /// Number of engine shards for [`crate::shard::ShardedDatabase`] runs:
    /// the graph is hash-partitioned over vid
    /// ([`vertexica_storage::partition::int_key_partition`]) across N
    /// independent `Database` instances, each with its own worker pool,
    /// catalog, and (when durable) its own WAL directory; supersteps exchange
    /// messages through per-(source, destination) outboxes with
    /// prescan-sealed routing. `shards = 1` collapses to the single-database
    /// code path byte for byte (plain [`crate::coordinator::run_program`] on
    /// a plain session ignores this knob entirely). Defaults to 1; the
    /// environment variable `VERTEXICA_SHARDS` sets the *default* (the hook
    /// the sharded CI job and the cross-engine harness use), while
    /// [`VertexicaConfig::with_shards`] always wins.
    pub shards: usize,
    /// Hard cap on supersteps (safety net on top of the program's own limit).
    pub max_supersteps: u64,
    /// Checkpoint every N supersteps into `checkpoint_dir`.
    pub checkpoint_every: Option<u64>,
    /// Where checkpoints are written.
    pub checkpoint_dir: Option<PathBuf>,
}

/// Default for [`VertexicaConfig::parallel_apply`]: on, unless the
/// `VERTEXICA_PARALLEL_APPLY` environment variable disables it (`0`, `false`
/// or `off`, case-insensitive) — the hook CI uses to keep the serial apply
/// path green on every push.
fn parallel_apply_default() -> bool {
    env_toggle_default_on("VERTEXICA_PARALLEL_APPLY")
}

/// Default for [`VertexicaConfig::pipelined`]: on, unless the
/// `VERTEXICA_PIPELINED` environment variable disables it (`0`, `false` or
/// `off`, case-insensitive) — the hook CI uses to keep the phased streaming
/// pipeline green on every push.
fn pipelined_default() -> bool {
    env_toggle_default_on("VERTEXICA_PIPELINED")
}

/// Default for [`VertexicaConfig::streaming_scan`]: on, unless the
/// `VERTEXICA_STREAM_SCAN` environment variable disables it (`0`, `false`
/// or `off`, case-insensitive) — the hook CI uses to keep the eager scan
/// path green on every push.
fn streaming_scan_default() -> bool {
    env_toggle_default_on("VERTEXICA_STREAM_SCAN")
}

/// Default for [`VertexicaConfig::vectorized_expr`]: on, unless the
/// `VERTEXICA_VECTOR_EXPR` environment variable disables it (`0`, `false`
/// or `off`, case-insensitive) — the hook CI uses to keep the row-at-a-time
/// expression path green on every push.
fn vectorized_expr_default() -> bool {
    env_toggle_default_on("VERTEXICA_VECTOR_EXPR")
}

/// `true` unless `var` is set to `0`/`false`/`off` (case-insensitive).
fn env_toggle_default_on(var: &str) -> bool {
    match std::env::var(var) {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "0" | "false" | "off"),
        Err(_) => true,
    }
}

/// Default for [`VertexicaConfig::memory_budget_bytes`]: unbounded, unless
/// the `VERTEXICA_MEMORY_BUDGET` environment variable sets a byte budget
/// (plain bytes or `k`/`kb`/`m`/`mb`/`g`/`gb` suffixed, case-insensitive) —
/// the hook the out-of-core CI job uses to run the whole suite under memory
/// pressure.
pub fn memory_budget_default() -> Option<usize> {
    vertexica_storage::buffer_pool::memory_budget_from_env()
}

/// Default for [`VertexicaConfig::durable`]: **off**, unless the
/// `VERTEXICA_DURABLE` environment variable enables it (anything other than
/// unset/`0`/`false`/`off`, case-insensitive) — the hook the durability CI
/// job and the cross-engine harness use to run every algorithm disk-backed.
pub fn durable_default() -> bool {
    match std::env::var("VERTEXICA_DURABLE") {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "" | "0" | "false" | "off"),
        Err(_) => false,
    }
}

/// Default for [`VertexicaConfig::shards`]: 1, unless the `VERTEXICA_SHARDS`
/// environment variable sets a shard count — the hook the sharded CI job and
/// the cross-engine harness use to run the equivalence matrix across N
/// engine shards. Unparsable or zero values fall back to 1.
pub fn shards_default() -> usize {
    std::env::var("VERTEXICA_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

impl Default for VertexicaConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        VertexicaConfig {
            num_workers: cores,
            num_partitions: cores * 4,
            input_mode: InputMode::TableUnion,
            replace_threshold: 0.2,
            use_combiner: true,
            streaming: true,
            parallel_apply: parallel_apply_default(),
            pipelined: pipelined_default(),
            stream_chunk_rows: crate::input::STREAM_CHUNK_ROWS,
            streaming_scan: streaming_scan_default(),
            vectorized_expr: vectorized_expr_default(),
            durable: durable_default(),
            memory_budget_bytes: memory_budget_default(),
            shards: shards_default(),
            max_supersteps: 10_000,
            checkpoint_every: None,
            checkpoint_dir: None,
        }
    }
}

impl VertexicaConfig {
    pub fn with_workers(mut self, n: usize) -> Self {
        self.num_workers = n.max(1);
        self
    }

    pub fn with_partitions(mut self, n: usize) -> Self {
        self.num_partitions = n.max(1);
        self
    }

    pub fn with_input_mode(mut self, mode: InputMode) -> Self {
        self.input_mode = mode;
        self
    }

    pub fn with_replace_threshold(mut self, t: f64) -> Self {
        self.replace_threshold = t.clamp(0.0, 1.0 + f64::EPSILON);
        self
    }

    pub fn with_combiner(mut self, on: bool) -> Self {
        self.use_combiner = on;
        self
    }

    pub fn with_streaming(mut self, on: bool) -> Self {
        self.streaming = on;
        self
    }

    pub fn with_parallel_apply(mut self, on: bool) -> Self {
        self.parallel_apply = on;
        self
    }

    pub fn with_pipelined(mut self, on: bool) -> Self {
        self.pipelined = on;
        self
    }

    pub fn with_stream_chunk_rows(mut self, rows: usize) -> Self {
        self.stream_chunk_rows = rows.max(1);
        self
    }

    pub fn with_streaming_scan(mut self, on: bool) -> Self {
        self.streaming_scan = on;
        self
    }

    pub fn with_vectorized_expr(mut self, on: bool) -> Self {
        self.vectorized_expr = on;
        self
    }

    pub fn with_durable(mut self, on: bool) -> Self {
        self.durable = on;
        self
    }

    pub fn with_memory_budget(mut self, bytes: Option<usize>) -> Self {
        self.memory_budget_bytes = bytes;
        self
    }

    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    pub fn with_max_supersteps(mut self, n: u64) -> Self {
        self.max_supersteps = n;
        self
    }

    pub fn with_checkpointing(mut self, every: u64, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_every = Some(every.max(1));
        self.checkpoint_dir = Some(dir.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = VertexicaConfig::default();
        assert!(c.num_workers >= 1);
        assert!(c.num_partitions >= c.num_workers);
        assert_eq!(c.input_mode, InputMode::TableUnion);
        assert!(c.replace_threshold > 0.0 && c.replace_threshold < 1.0);
    }

    #[test]
    fn builders_clamp() {
        let c = VertexicaConfig::default().with_workers(0).with_partitions(0);
        assert_eq!(c.num_workers, 1);
        assert_eq!(c.num_partitions, 1);
        let c = VertexicaConfig::default().with_replace_threshold(-3.0);
        assert_eq!(c.replace_threshold, 0.0);
    }
}
