//! Error type for the Vertexica layer.

use std::fmt;

use vertexica_sql::SqlError;
use vertexica_storage::StorageError;

/// Errors from graph sessions and the vertex-centric runtime.
#[derive(Debug)]
pub enum VertexicaError {
    Sql(SqlError),
    Storage(StorageError),
    /// Vertex/message payloads failed to decode.
    Codec(String),
    /// Checkpoint save/restore failure.
    Checkpoint(String),
    /// Anything else.
    Runtime(String),
}

impl fmt::Display for VertexicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VertexicaError::Sql(e) => write!(f, "sql error: {e}"),
            VertexicaError::Storage(e) => write!(f, "storage error: {e}"),
            VertexicaError::Codec(m) => write!(f, "codec error: {m}"),
            VertexicaError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            VertexicaError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for VertexicaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VertexicaError::Sql(e) => Some(e),
            VertexicaError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SqlError> for VertexicaError {
    fn from(e: SqlError) -> Self {
        VertexicaError::Sql(e)
    }
}

impl From<StorageError> for VertexicaError {
    fn from(e: StorageError) -> Self {
        VertexicaError::Storage(e)
    }
}

/// Result alias.
pub type VertexicaResult<T> = Result<T, VertexicaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: VertexicaError = SqlError::Plan("x".into()).into();
        assert!(e.to_string().contains("sql error"));
        let e: VertexicaError = StorageError::NoSuchTable("t".into()).into();
        assert!(e.to_string().contains("storage error"));
        assert!(VertexicaError::Codec("bad".into()).to_string().contains("codec"));
    }
}
