//! Applying worker outputs — the paper's **Update vs. Replace** optimization
//! (§2.3).
//!
//! Vertex-centric supersteps generate two kinds of writes: new vertex values
//! and a fresh message set. Naively UPDATE-ing the vertex table and
//! DELETE+INSERT-ing messages "can slow down the performance significantly".
//! Vertexica instead *replaces* tables: build `vertex_new` by LEFT JOINing
//! the old vertex table with the superstep's delta and swap it in. When few
//! tuples changed (below a threshold), in-place updates win — so the policy
//! is threshold-based.
//!
//! Two implementations of the policy live here:
//!
//! * the **serial** path ([`apply_accumulated`]): fold every partition's
//!   output into one [`OutputAccumulator`] and issue one-shot SQL table
//!   replacements (stage a delta table, LEFT JOIN, swap) — the paper's
//!   literal mechanism, kept for ablation via
//!   [`VertexicaConfig::with_parallel_apply`]`(false)`;
//! * the **segment-parallel** path ([`apply_parallel`], default): each
//!   partition's output is parsed and canonicalized **on the pool worker
//!   that finished it** ([`ParallelApply::absorb`]), the new vertex/message
//!   tables are built as per-bucket ROS segments in parallel on the same
//!   pool, and the commit is an atomic catalog-level contents swap
//!   ([`vertexica_sql::Database::replace_table_segmented`]). Canonicalizing
//!   sorts at every segment boundary keep the two paths bitwise-identical —
//!   which `tests/cross_engine_equivalence.rs`'s config-matrix harness
//!   proves on every vertex-centric algorithm.

use vertexica_common::sync::Mutex;

use vertexica_common::hash::FxHashMap;
use vertexica_common::pregel::{AggKind, VertexProgram};
use vertexica_common::VertexData;
use vertexica_storage::partition::{hash_partition, int_key_partition};
use vertexica_storage::{RecordBatch, TableOptions, Value};

use crate::config::VertexicaConfig;
use crate::error::{VertexicaError, VertexicaResult};
use crate::session::{message_batch, message_schema, vertex_schema, GraphSession};
use crate::worker::{OUT_AGGREGATE, OUT_MESSAGE, OUT_STATE};

/// What a superstep did, as observed by the coordinator.
#[derive(Debug, Clone, Default)]
pub struct SuperstepOutcome {
    /// Vertices whose value or halt state changed.
    pub vertex_changes: usize,
    /// Messages delivered into the next superstep.
    pub messages: usize,
    /// Whether the vertex table was replaced (vs updated in place).
    pub replaced: bool,
    /// Whether every vertex has voted to halt.
    pub all_halted: bool,
    /// Merged aggregator values for the next superstep.
    pub aggregates: FxHashMap<String, f64>,
    /// Per-vertex aggregator partials `(name, vid, value)`, sorted by
    /// (name, vid). The sharded coordinator folds the merge of every shard's
    /// partials in this order — per-shard folded f64 sums are not bitwise
    /// recombinable, the global fold must see the raw per-vertex terms.
    pub agg_partials: Vec<(String, i64, f64)>,
    /// Width of the apply fan-out: the number of segment buckets built in
    /// parallel on the pool (1 for the serial one-shot SQL path).
    pub apply_parallelism: usize,
}

/// Incrementally folds worker output batches into compact apply-ready form.
///
/// The streaming pipeline feeds each partition's output here **as the
/// partition finishes** (from whichever pool worker ran it, behind a mutex),
/// so raw output batches never accumulate; the materialized pipeline absorbs
/// everything at once through [`apply_outputs`]. Either way the absorbed
/// state is order-insensitive: [`apply_accumulated`] canonicalizes
/// (sort-by-key) before any order-dependent fold, so streaming completion
/// order cannot change results.
#[derive(Debug, Default)]
pub struct OutputAccumulator {
    /// Parsed state rows: (vid, encoded value, halted).
    updates: Vec<(i64, Vec<u8>, bool)>,
    /// Parsed message rows: (recipient, sender, payload).
    messages: Vec<(u64, u64, Vec<u8>)>,
    /// Per-vertex aggregator partials: (name, vid, value).
    agg_partials: Vec<(String, i64, f64)>,
    agg_specs: FxHashMap<String, AggKind>,
}

impl OutputAccumulator {
    /// An accumulator validating aggregator names against `program`'s specs.
    pub fn for_program<P: VertexProgram>(program: &P) -> Self {
        OutputAccumulator {
            agg_specs: program
                .aggregators()
                .into_iter()
                .map(|s| (s.name.to_string(), s.kind))
                .collect(),
            ..Default::default()
        }
    }

    /// An empty accumulator sharing this one's aggregator specs — for
    /// parsing a partition's output outside the shared accumulator's lock.
    pub fn fork(&self) -> Self {
        OutputAccumulator { agg_specs: self.agg_specs.clone(), ..Default::default() }
    }

    /// Folds another accumulator's parsed state into this one (cheap vector
    /// appends; ordering is canonicalized later by [`apply_accumulated`]).
    pub fn merge(&mut self, other: OutputAccumulator) {
        self.updates.extend(other.updates);
        self.messages.extend(other.messages);
        self.agg_partials.extend(other.agg_partials);
    }

    /// Parses one partition's worker output batches into the accumulator.
    /// Aggregator partials arrive tagged with their vertex id, so their
    /// final fold order — (name, vid) — is deterministic regardless of
    /// completion order, partitioning, or sharding. (`partition` is kept for
    /// signature symmetry with [`ParallelApply::absorb`].)
    pub fn absorb(&mut self, partition: usize, batches: &[RecordBatch]) -> VertexicaResult<()> {
        let _ = partition;
        for batch in batches {
            for i in 0..batch.num_rows() {
                let row = batch.row(i);
                let kind = row[0].as_int().unwrap_or(-1);
                match kind {
                    OUT_STATE => {
                        let vid = row[1].as_int().ok_or_else(|| {
                            VertexicaError::Runtime("state row without vid".into())
                        })?;
                        let Value::Blob(bytes) = row[3].clone() else {
                            return Err(VertexicaError::Runtime(
                                "state row without payload".into(),
                            ));
                        };
                        let halted = row[4].as_bool().unwrap_or(false);
                        self.updates.push((vid, bytes, halted));
                    }
                    OUT_MESSAGE => {
                        let to = row[1].as_int().unwrap_or(0) as u64;
                        let from = row[2].as_int().unwrap_or(0) as u64;
                        let Value::Blob(bytes) = row[3].clone() else {
                            return Err(VertexicaError::Runtime(
                                "message row without payload".into(),
                            ));
                        };
                        self.messages.push((to, from, bytes));
                    }
                    OUT_AGGREGATE => {
                        let Value::Str(name) = row[5].clone() else {
                            return Err(VertexicaError::Runtime(
                                "aggregate row without name".into(),
                            ));
                        };
                        let vid = row[1].as_int().ok_or_else(|| {
                            VertexicaError::Runtime("aggregate row without vid".into())
                        })?;
                        let v = row[6].as_float().unwrap_or(0.0);
                        if !self.agg_specs.contains_key(&name) {
                            return Err(VertexicaError::Runtime(format!(
                                "unknown aggregator {name}"
                            )));
                        }
                        self.agg_partials.push((name, vid, v));
                    }
                    other => {
                        return Err(VertexicaError::Runtime(format!("bad output kind {other}")));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Parses worker output rows and applies them to the graph's tables — the
/// one-shot form used by the materialized pipeline and tests. Routes to the
/// segment-parallel or serial apply path per `config.parallel_apply`.
pub fn apply_outputs<P: VertexProgram>(
    session: &GraphSession,
    program: &P,
    config: &VertexicaConfig,
    outputs: Vec<RecordBatch>,
    total_vertices: u64,
) -> VertexicaResult<SuperstepOutcome> {
    if config.parallel_apply {
        let apply = ParallelApply::for_program(program, config.num_workers.max(1));
        for (i, batch) in outputs.iter().enumerate() {
            apply.absorb(i, std::slice::from_ref(batch))?;
        }
        return apply_parallel(session, program, config, apply, total_vertices);
    }
    let mut acc = OutputAccumulator::for_program(program);
    for (i, batch) in outputs.iter().enumerate() {
        acc.absorb(i, std::slice::from_ref(batch))?;
    }
    apply_accumulated(session, program, config, acc, total_vertices)
}

/// Folds message partials addressed to the same recipient with the program's
/// combiner, preserving the serial path's exact fold order: `messages` must
/// arrive sorted by `(recipient, sender, payload)`, and partials for one
/// recipient are combined in that order. Both apply paths call this — the
/// serial one over the globally sorted message vector, the parallel one per
/// recipient-hash bucket (a restriction of the same sorted order, so every
/// per-recipient fold sequence is identical bit for bit).
fn combine_messages<P: VertexProgram>(
    program: &P,
    messages: Vec<(u64, u64, Vec<u8>)>,
) -> VertexicaResult<Vec<(u64, u64, Vec<u8>)>> {
    let mut folded: FxHashMap<u64, (u64, P::Message)> = FxHashMap::default();
    let mut passthrough: Vec<(u64, u64, Vec<u8>)> = Vec::new();
    for (to, from, bytes) in messages {
        let Some(m) = P::Message::from_bytes(&bytes) else {
            return Err(VertexicaError::Codec("cannot decode message for combine".into()));
        };
        match folded.remove(&to) {
            None => {
                folded.insert(to, (from, m));
            }
            Some((sender, existing)) => match program.combine(&existing, &m) {
                Some(c) => {
                    folded.insert(to, (sender, c));
                }
                None => {
                    passthrough.push((to, sender, existing.to_bytes()));
                    passthrough.push((to, from, m.to_bytes()));
                }
            },
        }
    }
    let mut messages = passthrough;
    for (to, (from, m)) in folded {
        messages.push((to, from, m.to_bytes()));
    }
    Ok(messages)
}

/// Applies accumulated worker outputs to the graph's tables: cross-partition
/// combine, message-table replace, update-vs-replace on the vertex table,
/// aggregator fold, halting check.
pub fn apply_accumulated<P: VertexProgram>(
    session: &GraphSession,
    program: &P,
    config: &VertexicaConfig,
    acc: OutputAccumulator,
    total_vertices: u64,
) -> VertexicaResult<SuperstepOutcome> {
    let OutputAccumulator { mut updates, mut messages, mut agg_partials, agg_specs } = acc;
    // Canonicalize: with streaming execution, partitions absorb in
    // completion order; sorting makes every downstream fold (and the table
    // contents feeding the next superstep) deterministic.
    updates.sort();
    messages.sort();
    agg_partials.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));

    let mut agg: FxHashMap<String, (AggKind, f64)> = FxHashMap::default();
    for (name, _, v) in &agg_partials {
        let kind = agg_specs[name];
        let entry = agg.entry(name.clone()).or_insert((kind, kind.identity()));
        entry.1 = kind.combine(entry.1, *v);
    }

    // Cross-partition combine: workers pre-combined within partitions; fold
    // partials addressed to the same recipient once more.
    if config.use_combiner {
        messages = combine_messages(program, messages)?;
    }

    // ---- messages: always replace (fresh table each superstep) ----
    let num_messages = messages.len();
    replace_messages(session, &messages)?;

    // ---- vertices: update vs replace ----
    let change_ratio =
        if total_vertices == 0 { 0.0 } else { updates.len() as f64 / total_vertices as f64 };
    let replaced = !updates.is_empty() && change_ratio >= config.replace_threshold;
    let vertex_changes = updates.len();
    if replaced {
        replace_vertices(session, &updates)?;
    } else if !updates.is_empty() {
        update_vertices_in_place(session, &updates)?;
    }

    // ---- halting check ----
    let remaining = session.db().query_int(&format!(
        "SELECT COUNT(*) FROM {} WHERE halted = FALSE",
        session.vertex_table()
    ))?;

    Ok(SuperstepOutcome {
        vertex_changes,
        messages: num_messages,
        replaced,
        all_halted: remaining == 0,
        aggregates: agg.into_iter().map(|(k, (_, v))| (k, v)).collect(),
        agg_partials,
        apply_parallelism: 1,
    })
}

/// Parsed state rows for one apply bucket: `(vid, encoded value, halted)`.
type UpdateRows = Vec<(i64, Vec<u8>, bool)>;
/// Parsed message rows for one apply bucket: `(recipient, sender, payload)`.
type MessageRows = Vec<(u64, u64, Vec<u8>)>;

/// One partition's parsed worker output, **pre-scattered into apply
/// buckets** — the per-partition segment builder state that replaces the
/// single [`OutputAccumulator`] drain on the parallel apply path.
struct PartitionDelta {
    partition: usize,
    /// Updates scattered by vertex-id hash: `updates[bucket]`.
    updates: Vec<UpdateRows>,
    /// Messages scattered by recipient hash: `messages[bucket]`.
    messages: Vec<MessageRows>,
    agg_partials: Vec<(String, i64, f64)>,
    num_updates: usize,
}

/// Collector for the segment-parallel apply path.
///
/// The streaming pipeline calls [`ParallelApply::absorb`] from whichever
/// pool worker finished a partition: the partition's raw output batches are
/// parsed **and scattered into apply buckets right there**, so by the time
/// the last partition lands, the post-barrier work is nothing but per-bucket
/// merges and segment builds (themselves fanned out on the pool). Only the
/// final vector push is serialized behind the mutex.
pub struct ParallelApply {
    agg_specs: FxHashMap<String, AggKind>,
    buckets: usize,
    deltas: Mutex<Vec<PartitionDelta>>,
}

impl ParallelApply {
    /// A collector scattering into `buckets` apply segments, validating
    /// aggregator names against `program`'s specs.
    pub fn for_program<P: VertexProgram>(program: &P, buckets: usize) -> Self {
        ParallelApply {
            agg_specs: program
                .aggregators()
                .into_iter()
                .map(|s| (s.name.to_string(), s.kind))
                .collect(),
            buckets: buckets.max(1),
            deltas: Mutex::new(Vec::new()),
        }
    }

    /// Parses one partition's worker output, scatters it into apply
    /// buckets, and files it under its partition index. Safe to call
    /// concurrently from pool workers; all the parsing and scattering
    /// happens outside the shared lock.
    pub fn absorb(&self, partition: usize, batches: &[RecordBatch]) -> VertexicaResult<()> {
        let mut acc = OutputAccumulator { agg_specs: self.agg_specs.clone(), ..Default::default() };
        acc.absorb(partition, batches)?;
        let OutputAccumulator { updates, messages, agg_partials, .. } = acc;
        let num_updates = updates.len();
        let mut upd_buckets: Vec<UpdateRows> = (0..self.buckets).map(|_| Vec::new()).collect();
        for u in updates {
            upd_buckets[int_key_partition(u.0, self.buckets)].push(u);
        }
        let mut msg_buckets: Vec<MessageRows> = (0..self.buckets).map(|_| Vec::new()).collect();
        for m in messages {
            msg_buckets[int_key_partition(m.0 as i64, self.buckets)].push(m);
        }
        self.deltas.lock().push(PartitionDelta {
            partition,
            updates: upd_buckets,
            messages: msg_buckets,
            agg_partials,
            num_updates,
        });
        Ok(())
    }
}

/// Builds one message-table segment batch by moving (not cloning) the
/// bucket's payloads into column builders.
fn message_segment(bucket: MessageRows) -> VertexicaResult<RecordBatch> {
    let mut rec = vertexica_storage::ColumnBuilder::with_capacity(
        vertexica_storage::DataType::Int,
        bucket.len(),
    );
    let mut snd = vertexica_storage::ColumnBuilder::with_capacity(
        vertexica_storage::DataType::Int,
        bucket.len(),
    );
    let mut val = vertexica_storage::ColumnBuilder::with_capacity(
        vertexica_storage::DataType::Blob,
        bucket.len(),
    );
    for (r, s, v) in bucket {
        rec.push_int(r as i64);
        snd.push_int(s as i64);
        val.push(Value::Blob(v)).map_err(VertexicaError::from)?;
    }
    RecordBatch::new(message_schema(), vec![rec.finish(), snd.finish(), val.finish()])
        .map_err(VertexicaError::from)
}

/// The segment-parallel apply path: scatter per-partition deltas into
/// recipient/vertex-hash buckets, build each bucket's new table segment in
/// parallel on the shared pool, and commit both tables with atomic
/// catalog-level contents swaps.
///
/// Equivalence with [`apply_accumulated`] (asserted bitwise by the
/// config-matrix harness) rests on three facts: every bucket is sorted with
/// the same comparator the serial path uses globally (a restriction of a
/// sorted sequence to a bucket preserves order, so per-recipient combine
/// folds see identical sequences); updates are keyed by vertex id, which is
/// unique, so override maps agree; and the worker's canonical total-order
/// input sort makes downstream compute independent of physical table row
/// order, which is the only thing that differs (bucket-major vs scan-major).
///
/// Commit protocol: **all** segments for both tables are fully encoded
/// first; only then are the message table and the vertex table swapped, in
/// that order. Any error or panic during parsing, combining, or segment
/// encoding leaves both tables untouched — there is no torn state to clean
/// up (the crash/abort test injects a pool-task panic to prove it). The
/// exception is the below-threshold *update* arm, which mutates the vertex
/// table in place after the message swap and is inherently non-atomic —
/// the same trade the serial path (and the paper) makes.
pub fn apply_parallel<P: VertexProgram>(
    session: &GraphSession,
    program: &P,
    config: &VertexicaConfig,
    apply: ParallelApply,
    total_vertices: u64,
) -> VertexicaResult<SuperstepOutcome> {
    apply_parallel_with_extra(session, program, config, apply, total_vertices, Vec::new())
}

/// [`apply_parallel`] with additional pre-encoded table groups riding the
/// same grouped commit. The sharded coordinator uses this to swap each
/// shard's meta-stamp table (and, on the durable path, the retained
/// previous-superstep message table) **atomically with** the superstep's
/// vertex/message replacement, so crash recovery always observes a shard at
/// exactly one superstep boundary.
pub fn apply_parallel_with_extra<P: VertexProgram>(
    session: &GraphSession,
    program: &P,
    config: &VertexicaConfig,
    apply: ParallelApply,
    total_vertices: u64,
    extra_commit: Vec<(String, Vec<vertexica_storage::Segment>)>,
) -> VertexicaResult<SuperstepOutcome> {
    let ParallelApply { agg_specs, buckets, deltas } = apply;
    let mut deltas = deltas.into_inner();
    deltas.sort_by_key(|d| d.partition);
    let pool = session.db().runtime().clone();

    // ---- aggregators: identical fold order to the serial path ----
    let mut agg_partials: Vec<(String, i64, f64)> =
        deltas.iter_mut().flat_map(|d| std::mem::take(&mut d.agg_partials)).collect();
    agg_partials.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    let mut agg: FxHashMap<String, (AggKind, f64)> = FxHashMap::default();
    for (name, _, v) in &agg_partials {
        let kind = agg_specs[name];
        let entry = agg.entry(name.clone()).or_insert((kind, kind.identity()));
        entry.1 = kind.combine(entry.1, *v);
    }

    // ---- update-vs-replace decision (needs the global delta size) ----
    let vertex_changes: usize = deltas.iter().map(|d| d.num_updates).sum();
    let change_ratio =
        if total_vertices == 0 { 0.0 } else { vertex_changes as f64 / total_vertices as f64 };
    let replaced = vertex_changes > 0 && change_ratio >= config.replace_threshold;

    // ---- messages: transpose per-partition buckets, build in parallel ----
    // `absorb` already scattered each partition's messages by recipient
    // hash, so this transpose moves whole vectors (O(partitions × buckets)
    // pointer swaps), never individual rows.
    let mut msg_buckets: Vec<Vec<MessageRows>> = (0..buckets).map(|_| Vec::new()).collect();
    for d in &mut deltas {
        for (b, v) in std::mem::take(&mut d.messages).into_iter().enumerate() {
            msg_buckets[b].push(v);
        }
    }
    let use_combiner = config.use_combiner;
    let msg_results: Vec<VertexicaResult<(usize, RecordBatch)>> =
        pool.map_indexed(msg_buckets, |_, parts| {
            let mut bucket: MessageRows = parts.into_iter().flatten().collect();
            // Canonicalizing sort at the segment boundary: the bucket holds
            // the same rows in the same relative order as the serial path's
            // globally sorted vector restricted to this bucket, so the
            // per-recipient combine below folds identically.
            bucket.sort();
            if use_combiner {
                bucket = combine_messages(program, bucket)?;
            }
            let count = bucket.len();
            Ok((count, message_segment(bucket)?))
        });
    let mut num_messages = 0usize;
    let mut msg_batches = Vec::with_capacity(buckets);
    for r in msg_results {
        let (count, batch) = r?;
        num_messages += count;
        if batch.num_rows() > 0 {
            msg_batches.push(batch);
        }
    }

    // ---- vertices: per-bucket LEFT-JOIN-equivalent merge, in parallel ----
    let mut vertex_batches = Vec::new();
    let mut active_after_replace = 0i64;
    if replaced {
        // Partition the old table's batches on the pool (one task per
        // storage batch), then transpose into per-bucket batch lists. The
        // hash matches `int_key_partition`, so each old row meets its
        // override in the same bucket.
        let old = session.db().scan_table(&session.vertex_table(), None, &[])?;
        let old_parted: Vec<VertexicaResult<Vec<Vec<RecordBatch>>>> =
            pool.map_indexed(old, |_, batch| {
                hash_partition(std::slice::from_ref(&batch), &[0], buckets)
                    .map_err(VertexicaError::from)
            });
        let mut old_buckets: Vec<Vec<RecordBatch>> = (0..buckets).map(|_| Vec::new()).collect();
        for per_batch in old_parted {
            for (b, v) in per_batch?.into_iter().enumerate() {
                old_buckets[b].extend(v);
            }
        }
        let mut upd_buckets: Vec<Vec<UpdateRows>> = (0..buckets).map(|_| Vec::new()).collect();
        for d in &mut deltas {
            for (b, v) in std::mem::take(&mut d.updates).into_iter().enumerate() {
                upd_buckets[b].push(v);
            }
        }
        let work: Vec<(Vec<RecordBatch>, Vec<UpdateRows>)> =
            old_buckets.into_iter().zip(upd_buckets).collect();
        let results: Vec<VertexicaResult<(RecordBatch, i64)>> =
            pool.map_indexed(work, |_, (old_batches, upd_parts)| {
                // Vertex ids are unique across partitions, so inserts never
                // collide.
                let ovr: FxHashMap<i64, (Vec<u8>, bool)> = upd_parts
                    .into_iter()
                    .flatten()
                    .map(|(id, bytes, halted)| (id, (bytes, halted)))
                    .collect();
                let mut rows: Vec<(i64, Value, Value)> = Vec::new();
                for batch in &old_batches {
                    let ids = batch.column(0);
                    for i in 0..batch.num_rows() {
                        let id = ids.value(i).as_int().ok_or_else(|| {
                            VertexicaError::Runtime("vertex row without id".into())
                        })?;
                        match ovr.get(&id) {
                            Some((bytes, halted)) => {
                                rows.push((id, Value::Blob(bytes.clone()), Value::Bool(*halted)))
                            }
                            // LEFT JOIN + COALESCE: untouched rows survive
                            // as-is; updates without an old row are dropped.
                            None => {
                                rows.push((id, batch.column(1).value(i), batch.column(2).value(i)))
                            }
                        }
                    }
                }
                rows.sort_by_key(|r| r.0);
                let mut ids = vertexica_storage::ColumnBuilder::with_capacity(
                    vertexica_storage::DataType::Int,
                    rows.len(),
                );
                let mut values = vertexica_storage::ColumnBuilder::with_capacity(
                    vertexica_storage::DataType::Blob,
                    rows.len(),
                );
                let mut halted = vertexica_storage::ColumnBuilder::with_capacity(
                    vertexica_storage::DataType::Bool,
                    rows.len(),
                );
                let mut active = 0i64;
                for (id, value, halt) in rows {
                    if halt == Value::Bool(false) {
                        active += 1;
                    }
                    ids.push_int(id);
                    values.push(value).map_err(VertexicaError::from)?;
                    halted.push(halt).map_err(VertexicaError::from)?;
                }
                let batch = RecordBatch::new(
                    vertex_schema(),
                    vec![ids.finish(), values.finish(), halted.finish()],
                )
                .map_err(VertexicaError::from)?;
                Ok((batch, active))
            });
        for r in results {
            let (batch, active) = r?;
            active_after_replace += active;
            if batch.num_rows() > 0 {
                vertex_batches.push(batch);
            }
        }
    }

    // ---- commit: encode EVERYTHING, then swap both tables at once ----
    // Both tables' segments are fully encoded before either contents swap,
    // and the swap itself is a single grouped catalog commit: on a durable
    // database both replacements ride one atomic WAL commit record, so
    // crash recovery can never land on a message table at superstep N+1
    // with the vertex table still at N. The commit call can only fail on
    // shape mismatches that are impossible by construction here (the
    // batches were built against the live schemas above).
    let msg_segments = session.db().encode_segments_for(&session.message_table(), msg_batches)?;
    let vertex_segments = if replaced {
        Some(session.db().encode_segments_for(&session.vertex_table(), vertex_batches)?)
    } else {
        None
    };
    let mut commit_group = vec![(session.message_table(), msg_segments)];
    let vertex_replaced = vertex_segments.is_some();
    if let Some(segments) = vertex_segments {
        commit_group.push((session.vertex_table(), segments));
    }
    commit_group.extend(extra_commit);
    session.db().commit_tables_segmented(commit_group)?;
    if !vertex_replaced && vertex_changes > 0 {
        // The *update* arm mutates the vertex table directly (delete +
        // re-insert); it is inherently per-row, not atomic with the message
        // swap — exactly the trade the paper's threshold policy makes.
        let mut updates: UpdateRows =
            deltas.iter_mut().flat_map(|d| std::mem::take(&mut d.updates)).flatten().collect();
        updates.sort();
        update_vertices_in_place(session, &updates)?;
    }

    // ---- halting check ----
    // After a replace we counted the active vertices while building the
    // segments (the table *is* what we just wrote), saving a full SQL scan;
    // the in-place path still asks the table.
    let remaining = if replaced {
        active_after_replace
    } else {
        session.db().query_int(&format!(
            "SELECT COUNT(*) FROM {} WHERE halted = FALSE",
            session.vertex_table()
        ))?
    };

    Ok(SuperstepOutcome {
        vertex_changes,
        messages: num_messages,
        replaced,
        all_halted: remaining == 0,
        aggregates: agg.into_iter().map(|(k, (_, v))| (k, v)).collect(),
        agg_partials,
        apply_parallelism: buckets,
    })
}

/// Swaps in a fresh message table containing exactly this superstep's
/// messages.
fn replace_messages(
    session: &GraphSession,
    messages: &[(u64, u64, Vec<u8>)],
) -> VertexicaResult<()> {
    let catalog = session.db().catalog();
    let tmp = format!("{}_message_new", session.name());
    catalog.drop_table_if_exists(&tmp)?;
    catalog.create_table(&tmp, message_schema(), TableOptions::default().sorted_by(vec![0]))?;
    if !messages.is_empty() {
        let batch = message_batch(
            &messages.iter().map(|(a, b, c)| (*a, *b, c.clone())).collect::<Vec<_>>(),
        )?;
        session.db().append_batches(&tmp, &[batch])?;
    }
    catalog.swap(&session.message_table(), &tmp)?;
    catalog.drop_table_if_exists(&tmp)?;
    Ok(())
}

/// The *replace* path: stage the delta in a table, LEFT JOIN it against the
/// old vertex table with COALESCE, and swap the result in — executed as
/// actual SQL, exactly the paper's mechanism.
fn replace_vertices(
    session: &GraphSession,
    updates: &[(i64, Vec<u8>, bool)],
) -> VertexicaResult<()> {
    let catalog = session.db().catalog();
    let delta = format!("{}_vertex_delta", session.name());
    let fresh = format!("{}_vertex_new", session.name());
    catalog.drop_table_if_exists(&delta)?;
    catalog.drop_table_if_exists(&fresh)?;

    catalog.create_table(&delta, vertex_schema(), TableOptions::default().sorted_by(vec![0]))?;
    let rows: Vec<Vec<Value>> = updates
        .iter()
        .map(|(id, bytes, halted)| {
            vec![Value::Int(*id), Value::Blob(bytes.clone()), Value::Bool(*halted)]
        })
        .collect();
    let batch = RecordBatch::from_rows(vertex_schema(), &rows)?;
    session.db().append_batches(&delta, &[batch])?;

    session.db().execute(&format!(
        "CREATE TABLE {fresh} AS \
         SELECT v.id AS id, COALESCE(d.value, v.value) AS value, \
                COALESCE(d.halted, v.halted) AS halted \
         FROM {v} v LEFT JOIN {delta} d ON v.id = d.id",
        v = session.vertex_table(),
    ))?;
    catalog.swap(&session.vertex_table(), &fresh)?;
    catalog.drop_table_if_exists(&fresh)?;
    catalog.drop_table_if_exists(&delta)?;
    Ok(())
}

/// The *update* path: in-place DML against the existing vertex table.
fn update_vertices_in_place(
    session: &GraphSession,
    updates: &[(i64, Vec<u8>, bool)],
) -> VertexicaResult<()> {
    let table = session.db().catalog().get(&session.vertex_table())?;
    let by_id: FxHashMap<i64, (&Vec<u8>, bool)> =
        updates.iter().map(|(id, b, h)| (*id, (b, *h))).collect();
    let scans = {
        let guard = table.read();
        guard.scan_with_rowids(None, &[])?
    };
    let mut dml: Vec<(u64, Vec<Value>)> = Vec::with_capacity(updates.len());
    for (batch, rowids) in scans {
        let ids = batch.column(0);
        for (i, &rowid) in rowids.iter().enumerate().take(batch.num_rows()) {
            let id = ids.value(i).as_int().unwrap_or(i64::MIN);
            if let Some((bytes, halted)) = by_id.get(&id) {
                dml.push((
                    rowid,
                    vec![Value::Int(id), Value::Blob((*bytes).clone()), Value::Bool(*halted)],
                ));
            }
        }
    }
    table.write().update_rows(dml)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::worker_output_schema;
    use std::sync::Arc;
    use vertexica_common::graph::EdgeList;
    use vertexica_common::pregel::{InitContext, VertexContext};
    use vertexica_common::VertexId;
    use vertexica_sql::Database;

    struct Noop;
    impl VertexProgram for Noop {
        type Value = f64;
        type Message = f64;
        fn initial_value(&self, _id: VertexId, _init: &InitContext) -> f64 {
            0.0
        }
        fn compute(&self, _ctx: &mut dyn VertexContext<f64, f64>, _messages: &[f64]) {}
        fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
            Some(a + b)
        }
    }

    fn setup() -> GraphSession {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges(&EdgeList::from_pairs([(0, 1), (1, 2), (2, 0), (2, 3)])).unwrap();
        // Initialize values so the vertex table is fully formed.
        let updates: Vec<(i64, Vec<u8>, bool)> =
            (0..4).map(|i| (i as i64, (0.0f64).to_bytes(), false)).collect();
        replace_vertices(&g, &updates).unwrap();
        g
    }

    fn out_batch(rows: Vec<Vec<Value>>) -> RecordBatch {
        RecordBatch::from_rows(worker_output_schema(), &rows).unwrap()
    }

    fn state_row(vid: i64, v: f64, halted: bool) -> Vec<Value> {
        vec![
            Value::Int(OUT_STATE),
            Value::Int(vid),
            Value::Null,
            Value::Blob(v.to_bytes()),
            Value::Bool(halted),
            Value::Null,
            Value::Null,
        ]
    }

    fn msg_row(to: i64, from: i64, v: f64) -> Vec<Value> {
        vec![
            Value::Int(OUT_MESSAGE),
            Value::Int(to),
            Value::Int(from),
            Value::Blob(v.to_bytes()),
            Value::Null,
            Value::Null,
            Value::Null,
        ]
    }

    #[test]
    fn small_delta_updates_in_place() {
        let g = setup();
        let cfg = VertexicaConfig::default().with_replace_threshold(0.5).with_combiner(false);
        let out = out_batch(vec![state_row(1, 7.5, false)]);
        let outcome = apply_outputs(&g, &Noop, &cfg, vec![out], 4).unwrap();
        assert!(!outcome.replaced);
        assert_eq!(outcome.vertex_changes, 1);
        let vals: Vec<(VertexId, f64)> = g.vertex_values().unwrap();
        assert_eq!(vals[1], (1, 7.5));
        assert_eq!(vals[0], (0, 0.0));
    }

    #[test]
    fn large_delta_replaces_table() {
        let g = setup();
        let cfg = VertexicaConfig::default().with_replace_threshold(0.5).with_combiner(false);
        let out = out_batch(vec![
            state_row(0, 1.0, false),
            state_row(1, 2.0, false),
            state_row(2, 3.0, false),
        ]);
        let outcome = apply_outputs(&g, &Noop, &cfg, vec![out], 4).unwrap();
        assert!(outcome.replaced);
        let vals: Vec<(VertexId, f64)> = g.vertex_values().unwrap();
        assert_eq!(vals.len(), 4);
        assert_eq!(vals[2], (2, 3.0));
        assert_eq!(vals[3], (3, 0.0)); // untouched row preserved by left join
        assert_eq!(g.num_vertices().unwrap(), 4);
    }

    #[test]
    fn messages_replace_the_message_table() {
        let g = setup();
        let cfg = VertexicaConfig::default().with_combiner(false);
        // Pre-existing stale message must vanish.
        let stale = message_batch(&[(0, 9, 1.0f64.to_bytes())]).unwrap();
        g.db().append_batches(&g.message_table(), &[stale]).unwrap();

        let out = out_batch(vec![msg_row(2, 0, 4.5), msg_row(3, 1, 5.5)]);
        let outcome = apply_outputs(&g, &Noop, &cfg, vec![out], 4).unwrap();
        assert_eq!(outcome.messages, 2);
        let n = g.db().query_int(&format!("SELECT COUNT(*) FROM {}", g.message_table())).unwrap();
        assert_eq!(n, 2);
        let stale_left = g
            .db()
            .query_int(&format!("SELECT COUNT(*) FROM {} WHERE sender = 9", g.message_table()))
            .unwrap();
        assert_eq!(stale_left, 0);
    }

    #[test]
    fn combiner_folds_across_partitions() {
        let g = setup();
        let cfg = VertexicaConfig::default().with_combiner(true);
        // Two partitions each sent a partial to vertex 2.
        let out1 = out_batch(vec![msg_row(2, 0, 1.0)]);
        let out2 = out_batch(vec![msg_row(2, 1, 2.0)]);
        let outcome = apply_outputs(&g, &Noop, &cfg, vec![out1, out2], 4).unwrap();
        assert_eq!(outcome.messages, 1);
        let rows = g.db().query(&format!("SELECT value FROM {}", g.message_table())).unwrap();
        assert_eq!(rows[0][0], Value::Blob(3.0f64.to_bytes()));
    }

    #[test]
    fn all_halted_detection() {
        let g = setup();
        let cfg = VertexicaConfig::default().with_replace_threshold(0.0);
        let out = out_batch(vec![
            state_row(0, 0.0, true),
            state_row(1, 0.0, true),
            state_row(2, 0.0, true),
            state_row(3, 0.0, true),
        ]);
        let outcome = apply_outputs(&g, &Noop, &cfg, vec![out], 4).unwrap();
        assert!(outcome.all_halted);
        assert!(outcome.replaced); // threshold 0 forces replace
    }

    #[test]
    fn empty_outputs_are_fine() {
        let g = setup();
        let cfg = VertexicaConfig::default();
        let outcome = apply_outputs(&g, &Noop, &cfg, vec![], 4).unwrap();
        assert_eq!(outcome.vertex_changes, 0);
        assert_eq!(outcome.messages, 0);
        assert!(!outcome.replaced);
    }
}
