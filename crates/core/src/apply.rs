//! Applying worker outputs — the paper's **Update vs. Replace** optimization
//! (§2.3).
//!
//! Vertex-centric supersteps generate two kinds of writes: new vertex values
//! and a fresh message set. Naively UPDATE-ing the vertex table and
//! DELETE+INSERT-ing messages "can slow down the performance significantly".
//! Vertexica instead *replaces* tables: build `vertex_new` by LEFT JOINing
//! the old vertex table with the superstep's delta and swap it in. When few
//! tuples changed (below a threshold), in-place updates win — so the policy
//! is threshold-based.

use vertexica_common::hash::FxHashMap;
use vertexica_common::pregel::{AggKind, VertexProgram};
use vertexica_common::VertexData;
use vertexica_storage::{RecordBatch, TableOptions, Value};

use crate::config::VertexicaConfig;
use crate::error::{VertexicaError, VertexicaResult};
use crate::session::{message_batch, message_schema, vertex_schema, GraphSession};
use crate::worker::{OUT_AGGREGATE, OUT_MESSAGE, OUT_STATE};

/// What a superstep did, as observed by the coordinator.
#[derive(Debug, Clone, Default)]
pub struct SuperstepOutcome {
    /// Vertices whose value or halt state changed.
    pub vertex_changes: usize,
    /// Messages delivered into the next superstep.
    pub messages: usize,
    /// Whether the vertex table was replaced (vs updated in place).
    pub replaced: bool,
    /// Whether every vertex has voted to halt.
    pub all_halted: bool,
    /// Merged aggregator values for the next superstep.
    pub aggregates: FxHashMap<String, f64>,
}

/// Incrementally folds worker output batches into compact apply-ready form.
///
/// The streaming pipeline feeds each partition's output here **as the
/// partition finishes** (from whichever pool worker ran it, behind a mutex),
/// so raw output batches never accumulate; the materialized pipeline absorbs
/// everything at once through [`apply_outputs`]. Either way the absorbed
/// state is order-insensitive: [`apply_accumulated`] canonicalizes
/// (sort-by-key) before any order-dependent fold, so streaming completion
/// order cannot change results.
#[derive(Debug, Default)]
pub struct OutputAccumulator {
    /// Parsed state rows: (vid, encoded value, halted).
    updates: Vec<(i64, Vec<u8>, bool)>,
    /// Parsed message rows: (recipient, sender, payload).
    messages: Vec<(u64, u64, Vec<u8>)>,
    /// Per-partition aggregator partials: (partition, name, value).
    agg_partials: Vec<(usize, String, f64)>,
    agg_specs: FxHashMap<String, AggKind>,
}

impl OutputAccumulator {
    /// An accumulator validating aggregator names against `program`'s specs.
    pub fn for_program<P: VertexProgram>(program: &P) -> Self {
        OutputAccumulator {
            agg_specs: program
                .aggregators()
                .into_iter()
                .map(|s| (s.name.to_string(), s.kind))
                .collect(),
            ..Default::default()
        }
    }

    /// An empty accumulator sharing this one's aggregator specs — for
    /// parsing a partition's output outside the shared accumulator's lock.
    pub fn fork(&self) -> Self {
        OutputAccumulator { agg_specs: self.agg_specs.clone(), ..Default::default() }
    }

    /// Folds another accumulator's parsed state into this one (cheap vector
    /// appends; ordering is canonicalized later by [`apply_accumulated`]).
    pub fn merge(&mut self, other: OutputAccumulator) {
        self.updates.extend(other.updates);
        self.messages.extend(other.messages);
        self.agg_partials.extend(other.agg_partials);
    }

    /// Parses one partition's worker output batches into the accumulator.
    /// `partition` tags aggregator partials so their final fold order is
    /// deterministic regardless of completion order.
    pub fn absorb(&mut self, partition: usize, batches: &[RecordBatch]) -> VertexicaResult<()> {
        for batch in batches {
            for i in 0..batch.num_rows() {
                let row = batch.row(i);
                let kind = row[0].as_int().unwrap_or(-1);
                match kind {
                    OUT_STATE => {
                        let vid = row[1].as_int().ok_or_else(|| {
                            VertexicaError::Runtime("state row without vid".into())
                        })?;
                        let Value::Blob(bytes) = row[3].clone() else {
                            return Err(VertexicaError::Runtime(
                                "state row without payload".into(),
                            ));
                        };
                        let halted = row[4].as_bool().unwrap_or(false);
                        self.updates.push((vid, bytes, halted));
                    }
                    OUT_MESSAGE => {
                        let to = row[1].as_int().unwrap_or(0) as u64;
                        let from = row[2].as_int().unwrap_or(0) as u64;
                        let Value::Blob(bytes) = row[3].clone() else {
                            return Err(VertexicaError::Runtime(
                                "message row without payload".into(),
                            ));
                        };
                        self.messages.push((to, from, bytes));
                    }
                    OUT_AGGREGATE => {
                        let Value::Str(name) = row[5].clone() else {
                            return Err(VertexicaError::Runtime(
                                "aggregate row without name".into(),
                            ));
                        };
                        let v = row[6].as_float().unwrap_or(0.0);
                        if !self.agg_specs.contains_key(&name) {
                            return Err(VertexicaError::Runtime(format!(
                                "unknown aggregator {name}"
                            )));
                        }
                        self.agg_partials.push((partition, name, v));
                    }
                    other => {
                        return Err(VertexicaError::Runtime(format!("bad output kind {other}")));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Parses worker output rows and applies them to the graph's tables — the
/// one-shot form used by the materialized pipeline and tests.
pub fn apply_outputs<P: VertexProgram>(
    session: &GraphSession,
    program: &P,
    config: &VertexicaConfig,
    outputs: Vec<RecordBatch>,
    total_vertices: u64,
) -> VertexicaResult<SuperstepOutcome> {
    let mut acc = OutputAccumulator::for_program(program);
    for (i, batch) in outputs.iter().enumerate() {
        acc.absorb(i, std::slice::from_ref(batch))?;
    }
    apply_accumulated(session, program, config, acc, total_vertices)
}

/// Applies accumulated worker outputs to the graph's tables: cross-partition
/// combine, message-table replace, update-vs-replace on the vertex table,
/// aggregator fold, halting check.
pub fn apply_accumulated<P: VertexProgram>(
    session: &GraphSession,
    program: &P,
    config: &VertexicaConfig,
    acc: OutputAccumulator,
    total_vertices: u64,
) -> VertexicaResult<SuperstepOutcome> {
    let OutputAccumulator { mut updates, mut messages, mut agg_partials, agg_specs } = acc;
    // Canonicalize: with streaming execution, partitions absorb in
    // completion order; sorting makes every downstream fold (and the table
    // contents feeding the next superstep) deterministic.
    updates.sort();
    messages.sort();
    agg_partials.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));

    let mut agg: FxHashMap<String, (AggKind, f64)> = FxHashMap::default();
    for (_, name, v) in agg_partials {
        let kind = agg_specs[&name];
        let entry = agg.entry(name).or_insert((kind, kind.identity()));
        entry.1 = kind.combine(entry.1, v);
    }

    // Cross-partition combine: workers pre-combined within partitions; fold
    // partials addressed to the same recipient once more.
    if config.use_combiner {
        let mut folded: FxHashMap<u64, (u64, P::Message)> = FxHashMap::default();
        let mut passthrough: Vec<(u64, u64, Vec<u8>)> = Vec::new();
        for (to, from, bytes) in messages {
            let Some(m) = P::Message::from_bytes(&bytes) else {
                return Err(VertexicaError::Codec("cannot decode message for combine".into()));
            };
            match folded.remove(&to) {
                None => {
                    folded.insert(to, (from, m));
                }
                Some((sender, existing)) => match program.combine(&existing, &m) {
                    Some(c) => {
                        folded.insert(to, (sender, c));
                    }
                    None => {
                        passthrough.push((to, sender, existing.to_bytes()));
                        passthrough.push((to, from, m.to_bytes()));
                    }
                },
            }
        }
        messages = passthrough;
        for (to, (from, m)) in folded {
            messages.push((to, from, m.to_bytes()));
        }
    }

    // ---- messages: always replace (fresh table each superstep) ----
    let num_messages = messages.len();
    replace_messages(session, &messages)?;

    // ---- vertices: update vs replace ----
    let change_ratio =
        if total_vertices == 0 { 0.0 } else { updates.len() as f64 / total_vertices as f64 };
    let replaced = !updates.is_empty() && change_ratio >= config.replace_threshold;
    let vertex_changes = updates.len();
    if replaced {
        replace_vertices(session, &updates)?;
    } else if !updates.is_empty() {
        update_vertices_in_place(session, &updates)?;
    }

    // ---- halting check ----
    let remaining = session.db().query_int(&format!(
        "SELECT COUNT(*) FROM {} WHERE halted = FALSE",
        session.vertex_table()
    ))?;

    Ok(SuperstepOutcome {
        vertex_changes,
        messages: num_messages,
        replaced,
        all_halted: remaining == 0,
        aggregates: agg.into_iter().map(|(k, (_, v))| (k, v)).collect(),
    })
}

/// Swaps in a fresh message table containing exactly this superstep's
/// messages.
fn replace_messages(
    session: &GraphSession,
    messages: &[(u64, u64, Vec<u8>)],
) -> VertexicaResult<()> {
    let catalog = session.db().catalog();
    let tmp = format!("{}_message_new", session.name());
    catalog.drop_table_if_exists(&tmp);
    catalog.create_table(&tmp, message_schema(), TableOptions::default().sorted_by(vec![0]))?;
    if !messages.is_empty() {
        let batch = message_batch(
            &messages.iter().map(|(a, b, c)| (*a, *b, c.clone())).collect::<Vec<_>>(),
        )?;
        session.db().append_batches(&tmp, &[batch])?;
    }
    catalog.swap(&session.message_table(), &tmp)?;
    catalog.drop_table_if_exists(&tmp);
    Ok(())
}

/// The *replace* path: stage the delta in a table, LEFT JOIN it against the
/// old vertex table with COALESCE, and swap the result in — executed as
/// actual SQL, exactly the paper's mechanism.
fn replace_vertices(
    session: &GraphSession,
    updates: &[(i64, Vec<u8>, bool)],
) -> VertexicaResult<()> {
    let catalog = session.db().catalog();
    let delta = format!("{}_vertex_delta", session.name());
    let fresh = format!("{}_vertex_new", session.name());
    catalog.drop_table_if_exists(&delta);
    catalog.drop_table_if_exists(&fresh);

    catalog.create_table(&delta, vertex_schema(), TableOptions::default().sorted_by(vec![0]))?;
    let rows: Vec<Vec<Value>> = updates
        .iter()
        .map(|(id, bytes, halted)| {
            vec![Value::Int(*id), Value::Blob(bytes.clone()), Value::Bool(*halted)]
        })
        .collect();
    let batch = RecordBatch::from_rows(vertex_schema(), &rows)?;
    session.db().append_batches(&delta, &[batch])?;

    session.db().execute(&format!(
        "CREATE TABLE {fresh} AS \
         SELECT v.id AS id, COALESCE(d.value, v.value) AS value, \
                COALESCE(d.halted, v.halted) AS halted \
         FROM {v} v LEFT JOIN {delta} d ON v.id = d.id",
        v = session.vertex_table(),
    ))?;
    catalog.swap(&session.vertex_table(), &fresh)?;
    catalog.drop_table_if_exists(&fresh);
    catalog.drop_table_if_exists(&delta);
    Ok(())
}

/// The *update* path: in-place DML against the existing vertex table.
fn update_vertices_in_place(
    session: &GraphSession,
    updates: &[(i64, Vec<u8>, bool)],
) -> VertexicaResult<()> {
    let table = session.db().catalog().get(&session.vertex_table())?;
    let by_id: FxHashMap<i64, (&Vec<u8>, bool)> =
        updates.iter().map(|(id, b, h)| (*id, (b, *h))).collect();
    let scans = {
        let guard = table.read();
        guard.scan_with_rowids(None, &[])?
    };
    let mut dml: Vec<(u64, Vec<Value>)> = Vec::with_capacity(updates.len());
    for (batch, rowids) in scans {
        let ids = batch.column(0);
        for (i, &rowid) in rowids.iter().enumerate().take(batch.num_rows()) {
            let id = ids.value(i).as_int().unwrap_or(i64::MIN);
            if let Some((bytes, halted)) = by_id.get(&id) {
                dml.push((
                    rowid,
                    vec![Value::Int(id), Value::Blob((*bytes).clone()), Value::Bool(*halted)],
                ));
            }
        }
    }
    table.write().update_rows(dml)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::worker_output_schema;
    use std::sync::Arc;
    use vertexica_common::graph::EdgeList;
    use vertexica_common::pregel::{InitContext, VertexContext};
    use vertexica_common::VertexId;
    use vertexica_sql::Database;

    struct Noop;
    impl VertexProgram for Noop {
        type Value = f64;
        type Message = f64;
        fn initial_value(&self, _id: VertexId, _init: &InitContext) -> f64 {
            0.0
        }
        fn compute(&self, _ctx: &mut dyn VertexContext<f64, f64>, _messages: &[f64]) {}
        fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
            Some(a + b)
        }
    }

    fn setup() -> GraphSession {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges(&EdgeList::from_pairs([(0, 1), (1, 2), (2, 0), (2, 3)])).unwrap();
        // Initialize values so the vertex table is fully formed.
        let updates: Vec<(i64, Vec<u8>, bool)> =
            (0..4).map(|i| (i as i64, (0.0f64).to_bytes(), false)).collect();
        replace_vertices(&g, &updates).unwrap();
        g
    }

    fn out_batch(rows: Vec<Vec<Value>>) -> RecordBatch {
        RecordBatch::from_rows(worker_output_schema(), &rows).unwrap()
    }

    fn state_row(vid: i64, v: f64, halted: bool) -> Vec<Value> {
        vec![
            Value::Int(OUT_STATE),
            Value::Int(vid),
            Value::Null,
            Value::Blob(v.to_bytes()),
            Value::Bool(halted),
            Value::Null,
            Value::Null,
        ]
    }

    fn msg_row(to: i64, from: i64, v: f64) -> Vec<Value> {
        vec![
            Value::Int(OUT_MESSAGE),
            Value::Int(to),
            Value::Int(from),
            Value::Blob(v.to_bytes()),
            Value::Null,
            Value::Null,
            Value::Null,
        ]
    }

    #[test]
    fn small_delta_updates_in_place() {
        let g = setup();
        let cfg = VertexicaConfig::default().with_replace_threshold(0.5).with_combiner(false);
        let out = out_batch(vec![state_row(1, 7.5, false)]);
        let outcome = apply_outputs(&g, &Noop, &cfg, vec![out], 4).unwrap();
        assert!(!outcome.replaced);
        assert_eq!(outcome.vertex_changes, 1);
        let vals: Vec<(VertexId, f64)> = g.vertex_values().unwrap();
        assert_eq!(vals[1], (1, 7.5));
        assert_eq!(vals[0], (0, 0.0));
    }

    #[test]
    fn large_delta_replaces_table() {
        let g = setup();
        let cfg = VertexicaConfig::default().with_replace_threshold(0.5).with_combiner(false);
        let out = out_batch(vec![
            state_row(0, 1.0, false),
            state_row(1, 2.0, false),
            state_row(2, 3.0, false),
        ]);
        let outcome = apply_outputs(&g, &Noop, &cfg, vec![out], 4).unwrap();
        assert!(outcome.replaced);
        let vals: Vec<(VertexId, f64)> = g.vertex_values().unwrap();
        assert_eq!(vals.len(), 4);
        assert_eq!(vals[2], (2, 3.0));
        assert_eq!(vals[3], (3, 0.0)); // untouched row preserved by left join
        assert_eq!(g.num_vertices().unwrap(), 4);
    }

    #[test]
    fn messages_replace_the_message_table() {
        let g = setup();
        let cfg = VertexicaConfig::default().with_combiner(false);
        // Pre-existing stale message must vanish.
        let stale = message_batch(&[(0, 9, 1.0f64.to_bytes())]).unwrap();
        g.db().append_batches(&g.message_table(), &[stale]).unwrap();

        let out = out_batch(vec![msg_row(2, 0, 4.5), msg_row(3, 1, 5.5)]);
        let outcome = apply_outputs(&g, &Noop, &cfg, vec![out], 4).unwrap();
        assert_eq!(outcome.messages, 2);
        let n = g.db().query_int(&format!("SELECT COUNT(*) FROM {}", g.message_table())).unwrap();
        assert_eq!(n, 2);
        let stale_left = g
            .db()
            .query_int(&format!("SELECT COUNT(*) FROM {} WHERE sender = 9", g.message_table()))
            .unwrap();
        assert_eq!(stale_left, 0);
    }

    #[test]
    fn combiner_folds_across_partitions() {
        let g = setup();
        let cfg = VertexicaConfig::default().with_combiner(true);
        // Two partitions each sent a partial to vertex 2.
        let out1 = out_batch(vec![msg_row(2, 0, 1.0)]);
        let out2 = out_batch(vec![msg_row(2, 1, 2.0)]);
        let outcome = apply_outputs(&g, &Noop, &cfg, vec![out1, out2], 4).unwrap();
        assert_eq!(outcome.messages, 1);
        let rows = g.db().query(&format!("SELECT value FROM {}", g.message_table())).unwrap();
        assert_eq!(rows[0][0], Value::Blob(3.0f64.to_bytes()));
    }

    #[test]
    fn all_halted_detection() {
        let g = setup();
        let cfg = VertexicaConfig::default().with_replace_threshold(0.0);
        let out = out_batch(vec![
            state_row(0, 0.0, true),
            state_row(1, 0.0, true),
            state_row(2, 0.0, true),
            state_row(3, 0.0, true),
        ]);
        let outcome = apply_outputs(&g, &Noop, &cfg, vec![out], 4).unwrap();
        assert!(outcome.all_halted);
        assert!(outcome.replaced); // threshold 0 forces replace
    }

    #[test]
    fn empty_outputs_are_fine() {
        let g = setup();
        let cfg = VertexicaConfig::default();
        let outcome = apply_outputs(&g, &Noop, &cfg, vec![], 4).unwrap();
        assert_eq!(outcome.vertex_changes, 0);
        assert_eq!(outcome.messages, 0);
        assert!(!outcome.replaced);
    }
}
