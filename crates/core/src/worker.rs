//! The worker: a transform UDF that executes the vertex compute function.
//!
//! "The worker is the container for the vertex-compute function … workers run
//! as database UDFs and typically there are as many parallel workers as the
//! number of cores" (§2.2). Each worker receives one hash partition of the
//! table union, sorts it by vertex id (vertex batching, §2.3), reconstructs
//! each vertex's value/edges/messages, runs `compute`, and emits new vertex
//! states, outgoing messages and aggregator contributions as rows.

use std::sync::Arc;

use vertexica_common::graph::{Edge, VertexId};
use vertexica_common::hash::FxHashMap;
use vertexica_common::pregel::{AggKind, VertexContext, VertexProgram};
use vertexica_common::runtime::WorkerPool;
use vertexica_common::VertexData;
use vertexica_sql::{SqlError, SqlResult, TransformUdf};
use vertexica_storage::{ColumnBuilder, DataType, Field, RecordBatch, Schema, Value};

use crate::input::{KIND_EDGE, KIND_MESSAGE, KIND_VERTEX};

/// Partitions at or above this row count sort their canonical input order
/// on the pool (chunk sorts in parallel + pairwise merges) instead of on
/// the worker alone. The worker itself runs *on* a pool thread, so this is
/// a nested scope — the runtime's help-first barrier makes it safe at any
/// pool size.
pub const PARALLEL_SORT_MIN_ROWS: usize = 4096;

/// Output-row kinds emitted by workers.
pub const OUT_STATE: i64 = 0;
pub const OUT_MESSAGE: i64 = 1;
pub const OUT_AGGREGATE: i64 = 2;

/// Worker output schema:
/// * state rows: `(0, vid, NULL, payload=new value, halted, NULL, NULL)`
/// * message rows: `(1, recipient, sender, payload, NULL, NULL, NULL)`
/// * aggregate rows: `(2, vid, NULL, NULL, NULL, name, value)` — one partial
///   per contributing vertex, so the apply-side fold order (by name, then
///   vid) is independent of partitioning and sharding
pub fn worker_output_schema() -> Arc<Schema> {
    Schema::new(vec![
        Field::not_null("kind", DataType::Int),
        Field::new("vid", DataType::Int),
        Field::new("other", DataType::Int),
        Field::new("payload", DataType::Blob),
        Field::new("halted", DataType::Bool),
        Field::new("agg_name", DataType::Str),
        Field::new("agg_value", DataType::Float),
    ])
}

/// The per-superstep worker UDF. Created fresh by the coordinator for every
/// superstep with that superstep's globals baked in.
pub struct VertexWorker<P: VertexProgram> {
    pub program: Arc<P>,
    pub superstep: u64,
    pub num_vertices: u64,
    /// Aggregator values from the previous superstep.
    pub prev_aggregates: Arc<FxHashMap<String, f64>>,
    /// Pre-combine messages per recipient within the partition.
    pub use_combiner: bool,
    /// The shared runtime pool, for sorting big partitions with nested
    /// parallelism (`None`: always sort on the calling thread).
    pub pool: Option<Arc<WorkerPool>>,
}

/// The `VertexContext` handed to user compute functions.
struct WorkerCtx<'a, P: VertexProgram> {
    id: VertexId,
    superstep: u64,
    num_vertices: u64,
    value: P::Value,
    edges: &'a [Edge],
    sent: Vec<(VertexId, P::Message)>,
    voted_halt: bool,
    agg_out: Vec<(String, f64)>,
    prev_aggregates: &'a FxHashMap<String, f64>,
}

impl<'a, P: VertexProgram> VertexContext<P::Value, P::Message> for WorkerCtx<'a, P> {
    fn vertex_id(&self) -> VertexId {
        self.id
    }

    fn superstep(&self) -> u64 {
        self.superstep
    }

    fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    fn value(&self) -> &P::Value {
        &self.value
    }

    fn set_value(&mut self, value: P::Value) {
        self.value = value;
    }

    fn out_edges(&self) -> &[Edge] {
        self.edges
    }

    fn send_message(&mut self, to: VertexId, msg: P::Message) {
        self.sent.push((to, msg));
    }

    fn vote_to_halt(&mut self) {
        self.voted_halt = true;
    }

    fn aggregate(&mut self, name: &str, value: f64) {
        self.agg_out.push((name.to_string(), value));
    }

    fn read_aggregate(&self, name: &str) -> Option<f64> {
        self.prev_aggregates.get(name).copied()
    }
}

/// Merges two runs sorted under `cmp` into one. Ties take from `a` first;
/// tying rows are byte-identical under the total order, so merge order
/// cannot change compute.
fn merge_runs(
    a: Vec<usize>,
    b: Vec<usize>,
    cmp: &impl Fn(usize, usize) -> std::cmp::Ordering,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ai, mut bi) = (0, 0);
    while ai < a.len() && bi < b.len() {
        if cmp(a[ai], b[bi]).is_le() {
            out.push(a[ai]);
            ai += 1;
        } else {
            out.push(b[bi]);
            bi += 1;
        }
    }
    out.extend_from_slice(&a[ai..]);
    out.extend_from_slice(&b[bi..]);
    out
}

impl<P: VertexProgram> VertexWorker<P> {
    fn decode_value(bytes: &[u8]) -> SqlResult<P::Value> {
        P::Value::from_bytes(bytes)
            .ok_or_else(|| SqlError::Udf("cannot decode vertex value".into()))
    }

    fn decode_message(bytes: &[u8]) -> SqlResult<P::Message> {
        P::Message::from_bytes(bytes)
            .ok_or_else(|| SqlError::Udf("cannot decode message value".into()))
    }
}

impl<P: VertexProgram> TransformUdf for VertexWorker<P> {
    fn name(&self) -> &str {
        "vertex_worker"
    }

    fn output_schema(&self, _input: &Schema) -> SqlResult<Arc<Schema>> {
        Ok(worker_output_schema())
    }

    fn execute(&self, partition: Vec<RecordBatch>) -> SqlResult<Vec<RecordBatch>> {
        // Merge the partition and sort row indices by (vid, kind): the
        // paper's per-partition sort on vertex id, with the vertex tuple
        // leading its edges and messages.
        let schema = partition
            .first()
            .map(|b| b.schema().clone())
            .unwrap_or_else(crate::input::union_schema);
        let merged = RecordBatch::concat(schema, &partition)?;
        let n = merged.num_rows();
        let vid_col = merged.column(0);
        let kind_col = merged.column(1);
        let other_col = merged.column(2);
        let weight_col = merged.column(3);
        let payload_col = merged.column(4);
        let halted_col = merged.column(5);

        let vids =
            vid_col.as_int().ok_or_else(|| SqlError::Udf("vid column must be BIGINT".into()))?;
        let kinds =
            kind_col.as_int().ok_or_else(|| SqlError::Udf("kind column must be BIGINT".into()))?;

        // Canonical **total** order: (vid, kind) first — the paper's
        // per-partition sort — then every remaining column as a tiebreak.
        // A mere (vid, kind) key leaves ties (a vertex's edges, its
        // messages) in input order, which silently couples compute to the
        // physical row order of the underlying tables; the segment-parallel
        // apply path writes those tables in a different (but content-equal)
        // order than the serial one. With a total order, any two runs that
        // agree on partition *contents* produce bitwise-identical compute —
        // which the config-matrix equivalence harness asserts. Rows tying on
        // every column are interchangeable, so `sort_unstable` (and any
        // run-merge order in the parallel sort) is safe.
        let tiebreak_cols = [other_col, weight_col, payload_col, halted_col];
        let cmp = |a: usize, b: usize| {
            (vids[a], kinds[a]).cmp(&(vids[b], kinds[b])).then_with(|| {
                for col in tiebreak_cols {
                    let ord = col.value(a).total_cmp(&col.value(b));
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            })
        };
        let mut order: Vec<usize> = (0..n).collect();
        let lanes = self.pool.as_ref().map_or(1, |p| p.size());
        if n >= PARALLEL_SORT_MIN_ROWS && lanes > 1 {
            // Big partition: sort contiguous runs as pool tasks — a nested
            // scope when this worker itself runs on the pool — then merge.
            let pool = self.pool.as_ref().expect("lanes > 1 implies a pool");
            let run_len = n.div_ceil(lanes);
            pool.scope(|s| {
                for run in order.chunks_mut(run_len) {
                    let cmp = &cmp;
                    s.spawn(move || run.sort_unstable_by(|&a, &b| cmp(a, b)));
                }
            });
            let mut runs: Vec<Vec<usize>> = order.chunks(run_len).map(<[usize]>::to_vec).collect();
            while runs.len() > 1 {
                let mut next = Vec::with_capacity(runs.len().div_ceil(2));
                let mut it = runs.into_iter();
                while let Some(a) = it.next() {
                    match it.next() {
                        Some(b) => next.push(merge_runs(a, b, &cmp)),
                        None => next.push(a),
                    }
                }
                runs = next;
            }
            order = runs.pop().unwrap_or_default();
        } else {
            order.sort_unstable_by(|&a, &b| cmp(a, b));
        }

        // Outputs.
        let mut state_rows: Vec<(VertexId, Vec<u8>, bool)> = Vec::new();
        let mut messages: Vec<(VertexId, VertexId, Vec<u8>)> = Vec::new();
        let mut combined: FxHashMap<VertexId, (VertexId, P::Message)> = FxHashMap::default();
        let mut agg_partials: Vec<(VertexId, String, f64)> = Vec::new();
        let agg_specs: FxHashMap<String, AggKind> =
            self.program.aggregators().into_iter().map(|s| (s.name.to_string(), s.kind)).collect();

        // Walk vertex groups.
        let mut i = 0usize;
        while i < n {
            let vid = vids[order[i]] as VertexId;
            let mut j = i;
            let mut vertex_row: Option<usize> = None;
            let mut edges: Vec<Edge> = Vec::new();
            let mut msgs: Vec<P::Message> = Vec::new();
            while j < n && vids[order[j]] as VertexId == vid {
                let row = order[j];
                match kinds[row] {
                    KIND_VERTEX => vertex_row = Some(row),
                    KIND_EDGE => {
                        let dst = other_col.value(row).as_int().unwrap_or(0) as VertexId;
                        let w = weight_col.value(row).as_float().unwrap_or(1.0);
                        edges.push(Edge::weighted(vid, dst, w));
                    }
                    KIND_MESSAGE => {
                        let bytes = match payload_col.value(row) {
                            Value::Blob(b) => b,
                            _ => return Err(SqlError::Udf("message payload not a blob".into())),
                        };
                        msgs.push(Self::decode_message(&bytes)?);
                    }
                    other => {
                        return Err(SqlError::Udf(format!("unknown tuple kind {other}")));
                    }
                }
                j += 1;
            }
            i = j;

            // Messages addressed to a vertex that doesn't exist are dropped
            // (consistent with Pregel's default resolver-less behaviour).
            let Some(vrow) = vertex_row else { continue };

            let old_halted = halted_col.value(vrow).as_bool().unwrap_or(false);
            let active = self.superstep == 0 || !old_halted || !msgs.is_empty();
            if !active {
                continue;
            }
            let old_bytes = match payload_col.value(vrow) {
                Value::Blob(b) => b,
                Value::Null => {
                    return Err(SqlError::Udf(format!("vertex {vid} has no initialized value")))
                }
                _ => return Err(SqlError::Udf("vertex payload not a blob".into())),
            };
            let value = Self::decode_value(&old_bytes)?;

            let mut ctx: WorkerCtx<'_, P> = WorkerCtx {
                id: vid,
                superstep: self.superstep,
                num_vertices: self.num_vertices,
                value,
                edges: &edges,
                sent: Vec::new(),
                voted_halt: false,
                agg_out: Vec::new(),
                prev_aggregates: &self.prev_aggregates,
            };
            self.program.compute(&mut ctx, &msgs);

            // Vertex state delta.
            let new_bytes = ctx.value.to_bytes();
            let new_halted = ctx.voted_halt;
            if new_bytes != old_bytes || new_halted != old_halted {
                state_rows.push((vid, new_bytes, new_halted));
            }

            // Outgoing messages (optionally pre-combined per recipient).
            for (to, m) in ctx.sent {
                if self.use_combiner {
                    match combined.remove(&to) {
                        None => {
                            combined.insert(to, (vid, m));
                        }
                        Some((sender, existing)) => {
                            match self.program.combine(&existing, &m) {
                                Some(folded) => {
                                    combined.insert(to, (sender, folded));
                                }
                                None => {
                                    // No combiner: flush both as plain rows.
                                    messages.push((to, sender, existing.to_bytes()));
                                    messages.push((to, vid, m.to_bytes()));
                                }
                            }
                        }
                    }
                } else {
                    messages.push((to, vid, m.to_bytes()));
                }
            }

            // Aggregator contributions fold **per vertex** (multiple calls by
            // the same vertex fold in call order) and emit one partial row per
            // (vertex, name). Per-vertex granularity is what keeps f64
            // aggregates invariant to partition and shard membership: the
            // apply stage folds all partials in (name, vid) order, which is
            // the same total order however the vertices were scattered.
            let mut per_vertex: Vec<(String, f64)> = Vec::new();
            for (name, v) in ctx.agg_out {
                let Some(kind) = agg_specs.get(&name).copied() else {
                    return Err(SqlError::Udf(format!("unknown aggregator {name}")));
                };
                match per_vertex.iter_mut().find(|(n, _)| *n == name) {
                    Some(entry) => entry.1 = kind.combine(entry.1, v),
                    None => per_vertex.push((name, kind.combine(kind.identity(), v))),
                }
            }
            for (name, v) in per_vertex {
                agg_partials.push((vid, name, v));
            }
        }
        for (to, (sender, m)) in combined {
            messages.push((to, sender, m.to_bytes()));
        }

        // Materialize the output batch.
        let out_schema = worker_output_schema();
        let total = state_rows.len() + messages.len() + agg_partials.len();
        let mut kind_b = ColumnBuilder::with_capacity(DataType::Int, total);
        let mut vid_b = ColumnBuilder::with_capacity(DataType::Int, total);
        let mut other_b = ColumnBuilder::with_capacity(DataType::Int, total);
        let mut payload_b = ColumnBuilder::with_capacity(DataType::Blob, total);
        let mut halted_b = ColumnBuilder::with_capacity(DataType::Bool, total);
        let mut name_b = ColumnBuilder::with_capacity(DataType::Str, total);
        let mut value_b = ColumnBuilder::with_capacity(DataType::Float, total);

        for (vid, bytes, halted) in state_rows {
            kind_b.push_int(OUT_STATE);
            vid_b.push_int(vid as i64);
            other_b.push_null();
            payload_b.push(Value::Blob(bytes))?;
            halted_b.push(Value::Bool(halted))?;
            name_b.push_null();
            value_b.push_null();
        }
        for (to, from, bytes) in messages {
            kind_b.push_int(OUT_MESSAGE);
            vid_b.push_int(to as i64);
            other_b.push_int(from as i64);
            payload_b.push(Value::Blob(bytes))?;
            halted_b.push_null();
            name_b.push_null();
            value_b.push_null();
        }
        for (vid, name, v) in agg_partials {
            kind_b.push_int(OUT_AGGREGATE);
            vid_b.push_int(vid as i64);
            other_b.push_null();
            payload_b.push_null();
            halted_b.push_null();
            name_b.push(Value::Str(name))?;
            value_b.push_float(v);
        }

        let batch = RecordBatch::new(
            out_schema,
            vec![
                kind_b.finish(),
                vid_b.finish(),
                other_b.finish(),
                payload_b.finish(),
                halted_b.finish(),
                name_b.finish(),
                value_b.finish(),
            ],
        )?;
        Ok(vec![batch])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::union_schema;
    use vertexica_common::pregel::{AggregatorSpec, InitContext, VertexContextExt};

    /// Echo program: forwards the max of (value, messages) to all neighbours
    /// and halts when nothing grew — a miniature of HashMax connectivity.
    struct MaxProp;

    impl VertexProgram for MaxProp {
        type Value = f64;
        type Message = f64;

        fn initial_value(&self, id: VertexId, _init: &InitContext) -> f64 {
            id as f64
        }

        fn compute(&self, ctx: &mut dyn VertexContext<f64, f64>, messages: &[f64]) {
            let best = messages.iter().copied().fold(*ctx.value(), f64::max);
            ctx.aggregate("touched", 1.0);
            if best > *ctx.value() || ctx.superstep() == 0 {
                ctx.set_value(best);
                ctx.send_to_all_neighbors(best);
            }
            ctx.vote_to_halt();
        }

        fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
            Some(a.max(*b))
        }

        fn aggregators(&self) -> Vec<AggregatorSpec> {
            vec![AggregatorSpec { name: "touched", kind: AggKind::Sum }]
        }
    }

    /// Builds a union-schema batch for: vertex rows with f64 values, edges,
    /// messages of f64.
    fn build_input(
        vertices: &[(u64, f64, bool)],
        edges: &[(u64, u64)],
        msgs: &[(u64, u64, f64)],
    ) -> RecordBatch {
        let mut rows = Vec::new();
        for (id, v, halted) in vertices {
            rows.push(vec![
                Value::Int(*id as i64),
                Value::Int(KIND_VERTEX),
                Value::Null,
                Value::Null,
                Value::Blob(v.to_bytes()),
                Value::Bool(*halted),
            ]);
        }
        for (s, d) in edges {
            rows.push(vec![
                Value::Int(*s as i64),
                Value::Int(KIND_EDGE),
                Value::Int(*d as i64),
                Value::Float(1.0),
                Value::Null,
                Value::Null,
            ]);
        }
        for (to, from, m) in msgs {
            rows.push(vec![
                Value::Int(*to as i64),
                Value::Int(KIND_MESSAGE),
                Value::Int(*from as i64),
                Value::Null,
                Value::Blob(m.to_bytes()),
                Value::Null,
            ]);
        }
        RecordBatch::from_rows(union_schema(), &rows).unwrap()
    }

    fn worker(superstep: u64, combiner: bool) -> VertexWorker<MaxProp> {
        VertexWorker {
            program: Arc::new(MaxProp),
            superstep,
            num_vertices: 3,
            prev_aggregates: Arc::new(FxHashMap::default()),
            use_combiner: combiner,
            pool: None,
        }
    }

    fn rows_of_kind(out: &[RecordBatch], kind: i64) -> Vec<Vec<Value>> {
        out.iter()
            .flat_map(|b| (0..b.num_rows()).map(move |i| b.row(i)))
            .filter(|r| r[0] == Value::Int(kind))
            .collect()
    }

    #[test]
    fn superstep_zero_activates_everyone() {
        let input = build_input(
            &[(0, 0.0, false), (1, 1.0, false), (2, 2.0, false)],
            &[(0, 1), (1, 2)],
            &[],
        );
        let out = worker(0, false).execute(vec![input]).unwrap();
        // Every vertex emits a state row (it halted, at minimum).
        assert_eq!(rows_of_kind(&out, OUT_STATE).len(), 3);
        // Vertices 0 and 1 send to their neighbour; 2 has no edges.
        assert_eq!(rows_of_kind(&out, OUT_MESSAGE).len(), 2);
        // One aggregate partial row per contributing vertex.
        let mut aggs = rows_of_kind(&out, OUT_AGGREGATE);
        aggs.sort_by_key(|r| r[1].as_int());
        assert_eq!(aggs.len(), 3);
        for (i, row) in aggs.iter().enumerate() {
            assert_eq!(row[1], Value::Int(i as i64), "partials are tagged with their vertex");
            assert_eq!(row[6], Value::Float(1.0));
        }
    }

    #[test]
    fn halted_vertices_without_messages_skip() {
        let input = build_input(&[(0, 0.0, true), (1, 1.0, true)], &[(0, 1)], &[]);
        let out = worker(1, false).execute(vec![input]).unwrap();
        assert!(rows_of_kind(&out, OUT_STATE).is_empty());
        assert!(rows_of_kind(&out, OUT_MESSAGE).is_empty());
    }

    #[test]
    fn message_reactivates_halted_vertex() {
        let input = build_input(&[(1, 1.0, true)], &[(1, 0)], &[(1, 0, 9.0)]);
        let out = worker(1, false).execute(vec![input]).unwrap();
        let states = rows_of_kind(&out, OUT_STATE);
        assert_eq!(states.len(), 1);
        // New value is 9.0.
        assert_eq!(states[0][3], Value::Blob(9.0f64.to_bytes()));
        // And it propagated.
        assert_eq!(rows_of_kind(&out, OUT_MESSAGE).len(), 1);
    }

    #[test]
    fn unchanged_vertex_emits_no_state_row() {
        // Vertex already halted=false... superstep 1, has a message smaller
        // than its value, so value doesn't change — but it votes halt, which
        // *is* a state change. Pre-halt it so the vote matches the old state:
        let input = build_input(&[(1, 5.0, true)], &[], &[(1, 0, 1.0)]);
        let out = worker(1, false).execute(vec![input]).unwrap();
        // Message is smaller: value unchanged; votes halt → halted stays
        // true → no state row at all.
        assert!(rows_of_kind(&out, OUT_STATE).is_empty());
    }

    #[test]
    fn combiner_folds_messages() {
        // Two vertices both send to vertex 2; with combiner only one message
        // row survives carrying the max.
        let input = build_input(
            &[(0, 10.0, false), (1, 20.0, false), (2, 0.0, false)],
            &[(0, 2), (1, 2)],
            &[],
        );
        let out = worker(0, true).execute(vec![input]).unwrap();
        let msgs = rows_of_kind(&out, OUT_MESSAGE);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0][3], Value::Blob(20.0f64.to_bytes()));
    }

    #[test]
    fn message_to_missing_vertex_dropped() {
        let input = build_input(&[(0, 0.0, false)], &[], &[(99, 0, 1.0)]);
        let out = worker(1, false).execute(vec![input]).unwrap();
        // No crash; only vertex 0's state.
        assert!(rows_of_kind(&out, OUT_STATE).len() <= 1);
    }

    #[test]
    fn parallel_sort_is_bitwise_identical_to_serial() {
        // A partition big enough to cross PARALLEL_SORT_MIN_ROWS, with
        // deliberately shuffled rows: the pooled sort path must produce
        // byte-identical output batches to the pool-less worker — and, when
        // invoked from inside a pool task (as the engine does), must
        // register as a *nested* scope.
        let n_vertices = PARALLEL_SORT_MIN_ROWS / 2;
        let vertices: Vec<(u64, f64, bool)> =
            (0..n_vertices as u64).map(|i| (i, (i % 97) as f64, false)).collect();
        let edges: Vec<(u64, u64)> =
            (0..n_vertices as u64).map(|i| (i, (i * 31 + 7) % n_vertices as u64)).collect();
        let msgs: Vec<(u64, u64, f64)> = (0..n_vertices as u64)
            .map(|i| (i, (i + 1) % n_vertices as u64, (i % 13) as f64))
            .collect();
        let mut input = build_input(&vertices, &edges, &msgs);
        // Shuffle rows deterministically so the sort has real work.
        let rows = input.num_rows();
        let perm: Vec<usize> = (0..rows).map(|i| (i * 7919) % rows).collect();
        // 7919 is prime and rows isn't a multiple of it ⇒ perm is a bijection.
        assert_eq!(perm.iter().collect::<std::collections::HashSet<_>>().len(), rows);
        input = input.take(&perm).unwrap();
        assert!(input.num_rows() >= PARALLEL_SORT_MIN_ROWS);

        let serial = worker(1, true).execute(vec![input.clone()]).unwrap();

        let pool = Arc::new(WorkerPool::new(4));
        let mut pooled_worker = worker(1, true);
        pooled_worker.pool = Some(pool.clone());
        let before = pool.metrics();
        // Run the worker the way the engine does: as a pool task.
        let result: vertexica_common::sync::Mutex<Option<SqlResult<Vec<RecordBatch>>>> =
            vertexica_common::sync::Mutex::new(None);
        pool.scope(|s| {
            let result = &result;
            let pooled_worker = &pooled_worker;
            let input = input.clone();
            s.spawn(move || {
                *result.lock() = Some(pooled_worker.execute(vec![input]));
            });
        });
        let pooled = result.into_inner().unwrap().unwrap();
        let delta = pool.metrics().delta_since(&before);
        assert!(delta.nested_scopes >= 1, "pooled sort from a worker must nest: {delta:?}");

        let rows_of = |out: &[RecordBatch]| -> Vec<Vec<Value>> {
            out.iter().flat_map(|b| (0..b.num_rows()).map(move |i| b.row(i))).collect()
        };
        assert_eq!(rows_of(&serial), rows_of(&pooled));
    }

    #[test]
    fn corrupt_payload_is_an_error() {
        let rows = vec![vec![
            Value::Int(0),
            Value::Int(KIND_VERTEX),
            Value::Null,
            Value::Null,
            Value::Blob(vec![1, 2, 3]), // not a valid f64
            Value::Bool(false),
        ]];
        let input = RecordBatch::from_rows(union_schema(), &rows).unwrap();
        assert!(worker(0, false).execute(vec![input]).is_err());
    }

    #[test]
    fn uninitialized_vertex_value_is_an_error() {
        let rows = vec![vec![
            Value::Int(0),
            Value::Int(KIND_VERTEX),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Bool(false),
        ]];
        let input = RecordBatch::from_rows(union_schema(), &rows).unwrap();
        assert!(worker(0, false).execute(vec![input]).is_err());
    }
}
