//! Worker input assembly — the paper's **Table Unions** optimization (§2.3).
//!
//! To run a superstep the workers need, per vertex: its value and halt state,
//! its outgoing edges, and its incoming messages. "Traditional database
//! wisdom" would 3-way join the vertex, edge and message tables — and explode
//! (a vertex with *E* edges and *M* messages yields *E × M* join rows).
//! Vertexica instead renames the three tables to a **common schema** and
//! `UNION ALL`s them; workers then tell the tuple kinds apart. Both
//! strategies are implemented here (the join baseline feeds the ablation
//! benchmark), and both are expressed as actual SQL against the engine.

use std::sync::Arc;

use vertexica_common::FxHashSet;
use vertexica_sql::JoinBuild;
use vertexica_storage::{Column, ColumnBuilder, DataType, Field, RecordBatch, Schema, Value};

use crate::config::InputMode;
use crate::error::{VertexicaError, VertexicaResult};
use crate::session::GraphSession;

/// Default upper bound on rows per streamed input chunk
/// ([`crate::config::VertexicaConfig::stream_chunk_rows`] overrides it).
/// Storage segments are usually the natural chunk size; this cap only kicks
/// in when one segment is huge, keeping peak in-flight chunk bytes bounded.
pub const STREAM_CHUNK_ROWS: usize = 65_536;

/// Tuple-kind discriminator for vertex rows in the common schema.
pub const KIND_VERTEX: i64 = 0;
/// Tuple-kind discriminator for edge rows in the common schema.
pub const KIND_EDGE: i64 = 1;
/// Tuple-kind discriminator for message rows in the common schema.
pub const KIND_MESSAGE: i64 = 2;

/// The common schema the three tables are renamed to:
/// `(vid, kind, other, weight, payload, halted)` where
/// * vertex rows: `vid=id, payload=value, halted=halted`
/// * edge rows: `vid=src, other=dst, weight=weight`
/// * message rows: `vid=recipient, other=sender, payload=value`
pub fn union_schema() -> Arc<Schema> {
    Schema::new(vec![
        Field::not_null("vid", DataType::Int),
        Field::not_null("kind", DataType::Int),
        Field::new("other", DataType::Int),
        Field::new("weight", DataType::Float),
        Field::new("payload", DataType::Blob),
        Field::new("halted", DataType::Bool),
    ])
}

/// Reshapes a raw message-table batch to the union wire schema — how the
/// sharded exchange (`crate::shard`) re-injects a peer's retained message
/// rows during crash repair.
pub(crate) fn message_union_batch(batch: &RecordBatch) -> VertexicaResult<RecordBatch> {
    SourceKind::Message.reshape(batch, &union_schema())
}

/// Assembles worker input in the configured mode, fully materialized.
///
/// This is the original (pre-streaming) form, kept for the materialized
/// pipeline and for equivalence testing; the superstep hot path uses
/// [`assemble_chunks`]. `streaming_scan` only affects the join mode's
/// engine-side execution (streaming vs eager SQL join) — the output is
/// bitwise-identical either way.
pub fn assemble(
    session: &GraphSession,
    mode: InputMode,
    streaming_scan: bool,
) -> VertexicaResult<Vec<RecordBatch>> {
    match mode {
        InputMode::TableUnion => assemble_union(session),
        InputMode::ThreeWayJoin => assemble_join(session, streaming_scan),
    }
}

/// The three source tables of a table-union assemble, with their scan
/// projections and re-shape kinds.
const UNION_SOURCES: [(SourceKind, Option<&[usize]>); 3] = [
    (SourceKind::Vertex, None),
    // Project edges to the three consumed columns; `created`/`etype` would
    // otherwise be decoded from every segment each superstep.
    (SourceKind::Edge, Some(&[0, 1, 2])),
    (SourceKind::Message, None),
];

#[derive(Clone, Copy)]
enum SourceKind {
    Vertex,
    Edge,
    Message,
}

impl SourceKind {
    fn table(&self, session: &GraphSession) -> String {
        match self {
            SourceKind::Vertex => session.vertex_table(),
            SourceKind::Edge => session.edge_table(),
            SourceKind::Message => session.message_table(),
        }
    }

    /// Re-shapes one scanned batch into the common union schema by attaching
    /// constant/null companion columns:
    ///
    /// * vertex `(id, value, halted)` → `(vid, 0, NULL, NULL, value, halted)`
    /// * edge `(src, dst, weight)` → `(src, 1, dst, weight, NULL, NULL)`
    /// * message `(recipient, sender, value)` → `(recipient, 2, sender, NULL, value, NULL)`
    fn reshape(&self, batch: &RecordBatch, schema: &Arc<Schema>) -> VertexicaResult<RecordBatch> {
        let n = batch.num_rows();
        let cols = match self {
            SourceKind::Vertex => vec![
                batch.column(0).clone(),
                Column::repeat(DataType::Int, &Value::Int(KIND_VERTEX), n)?,
                Column::repeat(DataType::Int, &Value::Null, n)?,
                Column::repeat(DataType::Float, &Value::Null, n)?,
                batch.column(1).clone(),
                batch.column(2).clone(),
            ],
            SourceKind::Edge => vec![
                batch.column(0).clone(),
                Column::repeat(DataType::Int, &Value::Int(KIND_EDGE), n)?,
                batch.column(1).clone(),
                batch.column(2).clone(),
                Column::repeat(DataType::Blob, &Value::Null, n)?,
                Column::repeat(DataType::Bool, &Value::Null, n)?,
            ],
            SourceKind::Message => vec![
                batch.column(0).clone(),
                Column::repeat(DataType::Int, &Value::Int(KIND_MESSAGE), n)?,
                batch.column(1).clone(),
                Column::repeat(DataType::Float, &Value::Null, n)?,
                batch.column(2).clone(),
                Column::repeat(DataType::Bool, &Value::Null, n)?,
            ],
        };
        Ok(RecordBatch::new(schema.clone(), cols)?)
    }
}

/// Streams worker input as union-schema chunks, invoking `sink` once per
/// chunk so the caller (the coordinator's streaming pipeline) can partition
/// and drop each chunk immediately — the full table union never exists in
/// memory at once. Returns the **peak resident scan bytes** gauge: the most
/// un-emitted source-scan data held at any moment while assembling.
///
/// In [`InputMode::TableUnion`] the three tables are scanned directly,
/// segment by segment, and each scanned batch is re-shaped into the common
/// schema with constant/null companion columns — the same rows the UNION ALL
/// query produces, without materializing their concatenation. With
/// `streaming_scan` (the default) each table is **pulled** through a
/// [`vertexica_sql::Database::scan_cursor`]: one decoded segment batch is
/// resident at a time, and the table lock is never held across the
/// re-shape. With it off, each table's batches are materialized eagerly (the
/// pre-cursor behavior, kept for ablation) — the gauge then reports whole
/// tables. Chunks larger than `chunk_rows` are split.
/// [`InputMode::ThreeWayJoin`] replays the join result through the same
/// sink; see [`partition_row_plan`] for how its row placement is planned.
pub fn assemble_chunks(
    session: &GraphSession,
    mode: InputMode,
    chunk_rows: usize,
    streaming_scan: bool,
    sink: &mut dyn FnMut(RecordBatch) -> VertexicaResult<()>,
) -> VertexicaResult<usize> {
    let chunk_rows = chunk_rows.max(1);
    match mode {
        InputMode::TableUnion => {
            let schema = union_schema();
            let mut peak_resident = 0usize;
            for (kind, projection) in UNION_SOURCES {
                let table = kind.table(session);
                if streaming_scan {
                    // Pull-based: exactly one decoded scan batch in flight.
                    let mut cursor = session.db().scan_cursor(&table, projection, &[])?;
                    while let Some(batch) = cursor.next_batch()? {
                        peak_resident = peak_resident.max(batch.estimated_bytes());
                        emit_capped(kind.reshape(&batch, &schema)?, chunk_rows, sink)?;
                    }
                } else {
                    // Eager: the whole table's batches are resident while
                    // its chunks re-shape (pre-cursor behavior, ablation).
                    let batches = session.db().scan_table(&table, projection, &[])?;
                    let resident: usize = batches.iter().map(|b| b.estimated_bytes()).sum();
                    peak_resident = peak_resident.max(resident);
                    for batch in &batches {
                        emit_capped(kind.reshape(batch, &schema)?, chunk_rows, sink)?;
                    }
                }
            }
            Ok(peak_resident)
        }
        InputMode::ThreeWayJoin => assemble_join_chunks(session, chunk_rows, streaming_scan, sink),
    }
}

/// Feeds `chunk` to the sink, split into `chunk_rows`-row pieces when
/// oversized.
fn emit_capped(
    chunk: RecordBatch,
    chunk_rows: usize,
    sink: &mut dyn FnMut(RecordBatch) -> VertexicaResult<()>,
) -> VertexicaResult<()> {
    let n = chunk.num_rows();
    if n <= chunk_rows {
        return sink(chunk);
    }
    let mut start = 0;
    while start < n {
        let end = (start + chunk_rows).min(n);
        let indices: Vec<usize> = (start..end).collect();
        sink(chunk.take(&indices).map_err(VertexicaError::from)?)?;
        start = end;
    }
    Ok(())
}

/// How much input each compute partition will eventually receive, for
/// pipelined per-partition completion detection: `plan[p]` is the number of
/// union-schema rows hashing (on `vid`) to partition `p`.
///
/// This is how the chunk sources "declare which partitions they can still
/// touch": a cheap prescan of each source table hashes every future row
/// with the exact rule the scatter uses, so the moment partition `p` has
/// received `plan[p]` rows, no later chunk can touch it and its compute
/// task can launch.
///
/// * [`InputMode::TableUnion`]: only each source's **key column** is
///   prescanned (one BIGINT column out of six — the blob payloads that
///   dominate assemble are never decoded) and every row counts once.
/// * [`InputMode::ThreeWayJoin`]: every re-shaped row's partition is
///   `hash(vid)` where `vid` is the probed vertex id, so placement *can* be
///   planned without running the join — the prescan replays the re-shape's
///   dedup rules (the `JoinDedup` seen-sets) over the base tables: one row per distinct
///   vertex id, plus one per distinct surviving message/edge key. This is
///   what seals the join mode's partitions (the pre-cursor implementation
///   kept them open-ended because the join only existed as a materialized
///   SQL result).
pub fn partition_row_plan(
    session: &GraphSession,
    mode: InputMode,
    num_partitions: usize,
) -> VertexicaResult<Option<Vec<u64>>> {
    let num_partitions = num_partitions.max(1);
    let mut plan = vec![0u64; num_partitions];
    match mode {
        InputMode::TableUnion => {
            // The three sources' key columns: vertex id, edge src, message
            // recipient — each is column 0 of its table and becomes `vid`
            // (the partition key) in the union schema.
            for table in [session.vertex_table(), session.edge_table(), session.message_table()] {
                let mut cursor = session.db().scan_cursor(&table, Some(&[0]), &[])?;
                while let Some(batch) = cursor.next_batch()? {
                    if num_partitions == 1 {
                        plan[0] += batch.num_rows() as u64;
                        continue;
                    }
                    let assign = vertexica_storage::partition::partition_assignments(
                        std::slice::from_ref(&batch),
                        &[0],
                        num_partitions,
                    );
                    for &p in &assign[0] {
                        plan[p] += 1;
                    }
                }
            }
        }
        InputMode::ThreeWayJoin => {
            let mut dedup = JoinDedup::default();
            let part =
                |vid: i64| vertexica_storage::partition::int_key_partition(vid, num_partitions);
            // Every vertex contributes exactly one KIND_VERTEX row. A NULL
            // id would fail assembly loudly; skip it here so the prescan
            // errors in the same place the re-shape does.
            let mut cursor = session.db().scan_cursor(&session.vertex_table(), Some(&[0]), &[])?;
            while let Some(batch) = cursor.next_batch()? {
                let ids = batch.column(0);
                for i in 0..batch.num_rows() {
                    if let Some(id) = ids.value(i).as_int() {
                        if dedup.seen_vertex.insert(id) {
                            plan[part(id)] += 1;
                        }
                    }
                }
            }
            // Messages: one row per distinct surviving message key, placed
            // at its recipient. Messages to unknown vertices never survive
            // the LEFT JOIN from the vertex table.
            let mut cursor = session.db().scan_cursor(&session.message_table(), None, &[])?;
            while let Some(batch) = cursor.next_batch()? {
                for i in 0..batch.num_rows() {
                    let row = batch.row(i);
                    let Some(recipient) = row[0].as_int() else { continue };
                    if !dedup.seen_vertex.contains(&recipient) {
                        continue;
                    }
                    if let Some(key) = msg_dedup_key(recipient, &row[1], &row[2]) {
                        if dedup.seen_msg.insert(key) {
                            plan[part(recipient)] += 1;
                        }
                    }
                }
            }
            // Edges: one row per distinct surviving edge key, placed at its
            // source vertex.
            let mut cursor =
                session.db().scan_cursor(&session.edge_table(), Some(&[0, 1, 2]), &[])?;
            while let Some(batch) = cursor.next_batch()? {
                for i in 0..batch.num_rows() {
                    let row = batch.row(i);
                    let Some(src) = row[0].as_int() else { continue };
                    if !dedup.seen_vertex.contains(&src) {
                        continue;
                    }
                    if let Some(key) = edge_dedup_key(src, &row[1], &row[2]) {
                        if dedup.seen_edge.insert(key) {
                            plan[part(src)] += 1;
                        }
                    }
                }
            }
        }
    }
    Ok(Some(plan))
}

/// The paper's strategy: rename to a common schema and UNION ALL.
fn assemble_union(session: &GraphSession) -> VertexicaResult<Vec<RecordBatch>> {
    let sql = format!(
        "SELECT id AS vid, 0 AS kind, CAST(NULL AS BIGINT) AS other, \
                CAST(NULL AS FLOAT) AS weight, value AS payload, halted \
         FROM {v} \
         UNION ALL \
         SELECT src, 1, dst, weight, CAST(NULL AS VARBINARY), CAST(NULL AS BOOLEAN) FROM {e} \
         UNION ALL \
         SELECT recipient, 2, sender, CAST(NULL AS FLOAT), value, CAST(NULL AS BOOLEAN) \
         FROM {m}",
        v = session.vertex_table(),
        e = session.edge_table(),
        m = session.message_table(),
    );
    let batches = session.db().execute(&sql)?.into_batches()?;
    // Re-stamp with the canonical schema (names already line up).
    let schema = union_schema();
    batches
        .into_iter()
        .map(|b| RecordBatch::new(schema.clone(), b.columns().to_vec()).map_err(Into::into))
        .collect()
}

/// The naive baseline, materialized: collects the streaming reshape of
/// [`assemble_join_chunks`] (kept for the materialized pipeline and tests).
fn assemble_join(
    session: &GraphSession,
    streaming_scan: bool,
) -> VertexicaResult<Vec<RecordBatch>> {
    let mut out = Vec::new();
    assemble_join_chunks(session, STREAM_CHUNK_ROWS, streaming_scan, &mut |b| {
        out.push(b);
        Ok(())
    })?;
    Ok(out)
}

/// The running seen-sets that deduplicate the 3-way join's per-vertex
/// `edges × messages` cartesian blowup back into one union-schema row per
/// vertex / surviving message / surviving edge. Shared — keys and rules —
/// between the re-shape itself and the [`partition_row_plan`] prescan, so
/// the plan the prescan hands the sealing partitioner is exactly what the
/// re-shape will deliver (any drift is a loud plan violation at runtime).
#[derive(Default)]
struct JoinDedup {
    seen_vertex: FxHashSet<i64>,
    seen_msg: FxHashSet<(i64, i64, Vec<u8>)>,
    seen_edge: FxHashSet<(i64, i64, u64)>,
}

/// Dedup key of a message row at `recipient`: `None` when the sender is
/// NULL (the re-shape drops such rows, exactly like an unmatched LEFT JOIN
/// slot). A NULL payload collapses with an empty one — a property of the
/// join formulation, preserved bit-for-bit from the original re-shape.
fn msg_dedup_key(recipient: i64, sender: &Value, value: &Value) -> Option<(i64, i64, Vec<u8>)> {
    let sender = sender.as_int()?;
    let bytes = value.as_blob().map(|b| b.to_vec()).unwrap_or_default();
    Some((recipient, sender, bytes))
}

/// Dedup key of an edge row at `src`: `None` when `dst` is NULL. A NULL
/// weight collapses with the default weight 1.0 (join-formulation property,
/// preserved from the original re-shape).
fn edge_dedup_key(src: i64, dst: &Value, weight: &Value) -> Option<(i64, i64, u64)> {
    let dst = dst.as_int()?;
    let w = weight.as_float().unwrap_or(1.0);
    Some((src, dst, w.to_bits()))
}

/// Schema of the (streamed or SQL-materialized) 3-way join result:
/// `(id, value, halted, sender, mvalue, dst, weight)`.
fn joined_schema() -> Arc<Schema> {
    Schema::new(vec![
        Field::not_null("id", DataType::Int),
        Field::new("value", DataType::Blob),
        Field::new("halted", DataType::Bool),
        Field::new("sender", DataType::Int),
        Field::new("mvalue", DataType::Blob),
        Field::new("dst", DataType::Int),
        Field::new("weight", DataType::Float),
    ])
}

/// Re-shapes one joined batch into union-schema rows, deduplicating against
/// the running seen-sets, and emits the survivors through `sink`.
fn reshape_joined_batch(
    batch: &RecordBatch,
    dedup: &mut JoinDedup,
    chunk_rows: usize,
    sink: &mut dyn FnMut(RecordBatch) -> VertexicaResult<()>,
) -> VertexicaResult<()> {
    let schema = union_schema();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for i in 0..batch.num_rows() {
        let r = batch.row(i);
        let vid = r[0]
            .as_int()
            .ok_or_else(|| VertexicaError::Runtime("join input: vertex id is null".into()))?;
        if dedup.seen_vertex.insert(vid) {
            rows.push(vec![
                Value::Int(vid),
                Value::Int(KIND_VERTEX),
                Value::Null,
                Value::Null,
                r[1].clone(),
                r[2].clone(),
            ]);
        }
        if let Some(key) = msg_dedup_key(vid, &r[3], &r[4]) {
            if !dedup.seen_msg.contains(&key) {
                rows.push(vec![
                    Value::Int(vid),
                    Value::Int(KIND_MESSAGE),
                    Value::Int(key.1),
                    Value::Null,
                    Value::Blob(key.2.clone()),
                    Value::Null,
                ]);
                dedup.seen_msg.insert(key);
            }
        }
        if let Some(key) = edge_dedup_key(vid, &r[5], &r[6]) {
            if dedup.seen_edge.insert(key) {
                rows.push(vec![
                    Value::Int(vid),
                    Value::Int(KIND_EDGE),
                    Value::Int(key.1),
                    Value::Float(f64::from_bits(key.2)),
                    Value::Null,
                    Value::Null,
                ]);
            }
        }
    }
    if !rows.is_empty() {
        emit_capped(RecordBatch::from_rows(schema, &rows)?, chunk_rows, sink)?;
    }
    Ok(())
}

/// The naive baseline: a 3-way join producing the per-vertex cartesian
/// product of edges × messages, re-shaped (with deduplication) into the
/// common schema so the same worker can consume it. The join cost *and* the
/// dedup cost are the point of the ablation. Returns the peak resident scan
/// bytes gauge (see [`assemble_chunks`]).
///
/// With `streaming_scan` (the default) the join itself **streams** through
/// the engine's hash-join primitive: the message and edge tables are hashed
/// once as build sides ([`vertexica_sql::JoinBuild`], recipient/src keys),
/// and the vertex table — the LEFT JOIN's preserved probe side — is pulled
/// batch-by-batch through a scan cursor; each probe batch's `v ⟕ m ⟕ e`
/// rows are composed, re-shaped and emitted before the next batch is
/// pulled. Only the build sides and the key-only seen-sets stay resident.
/// With it off, the whole join result is materialized by the SQL engine
/// first (the pre-cursor behavior, kept for ablation); the re-shape still
/// streams batch by batch.
///
/// Limitation (inherent to the join formulation): duplicate edges and
/// byte-identical duplicate messages to the same vertex collapse. The default
/// union mode has no such restriction.
fn assemble_join_chunks(
    session: &GraphSession,
    chunk_rows: usize,
    streaming_scan: bool,
    sink: &mut dyn FnMut(RecordBatch) -> VertexicaResult<()>,
) -> VertexicaResult<usize> {
    let mut dedup = JoinDedup::default();

    if !streaming_scan {
        let sql = format!(
            "SELECT v.id, v.value, v.halted, m.sender, m.value AS mvalue, e.dst, e.weight \
             FROM {v} v \
             LEFT JOIN {m} m ON m.recipient = v.id \
             LEFT JOIN {e} e ON e.src = v.id",
            v = session.vertex_table(),
            e = session.edge_table(),
            m = session.message_table(),
        );
        let batches = session.db().execute(&sql)?.into_batches()?;
        let resident: usize = batches.iter().map(|b| b.estimated_bytes()).sum();
        for batch in &batches {
            reshape_joined_batch(batch, &mut dedup, chunk_rows, sink)?;
        }
        return Ok(resident);
    }

    // Streaming: hash the two build sides once, then pull the probe side.
    let db = session.db();
    let m_build = db.hash_join_build(&session.message_table(), None, vec![0])?;
    let e_build = db.hash_join_build(&session.edge_table(), Some(&[0, 1, 2]), vec![0])?;
    let builds_resident = m_build.batch().estimated_bytes() + e_build.batch().estimated_bytes();
    let mut peak_resident = builds_resident;

    let mut cursor = db.scan_cursor(&session.vertex_table(), None, &[])?;
    while let Some(vbatch) = cursor.next_batch()? {
        peak_resident = peak_resident.max(builds_resident + vbatch.estimated_bytes());
        let joined = three_way_join_batch(&vbatch, &m_build, &e_build)?;
        reshape_joined_batch(&joined, &mut dedup, chunk_rows, sink)?;
    }
    Ok(peak_resident)
}

/// Composes one probe batch's `v ⟕ m ⟕ e` rows: each vertex row fans out to
/// the cartesian product of its message matches × edge matches (LEFT JOIN
/// semantics — an empty side contributes one NULL slot), exactly the rows
/// the SQL formulation produces for those vertices.
fn three_way_join_batch(
    vbatch: &RecordBatch,
    m_build: &JoinBuild,
    e_build: &JoinBuild,
) -> VertexicaResult<RecordBatch> {
    let m_matches = m_build.probe_matches(vbatch, &[0])?;
    let e_matches = e_build.probe_matches(vbatch, &[0])?;
    let mut triples: Vec<(usize, Option<usize>, Option<usize>)> = Vec::new();
    for v in 0..vbatch.num_rows() {
        let ms = &m_matches[v];
        let es = &e_matches[v];
        match (ms.is_empty(), es.is_empty()) {
            (true, true) => triples.push((v, None, None)),
            (false, true) => triples.extend(ms.iter().map(|&m| (v, Some(m), None))),
            (true, false) => triples.extend(es.iter().map(|&e| (v, None, Some(e)))),
            (false, false) => {
                for &m in ms {
                    triples.extend(es.iter().map(|&e| (v, Some(m), Some(e))));
                }
            }
        }
    }

    // Gather the 7 joined columns: v.(id, value, halted), m.(sender,
    // value), e.(dst, weight).
    let schema = joined_schema();
    let mbatch = m_build.batch();
    let ebatch = e_build.batch();
    let mut cols = Vec::with_capacity(schema.len());
    let sources: [(&RecordBatch, usize, u8); 7] = [
        (vbatch, 0, 0),
        (vbatch, 1, 0),
        (vbatch, 2, 0),
        (mbatch, 1, 1),
        (mbatch, 2, 1),
        (ebatch, 1, 2),
        (ebatch, 2, 2),
    ];
    for (field, (batch, ci, side)) in schema.fields.iter().zip(sources) {
        let src = batch.column(ci);
        let mut b = ColumnBuilder::with_capacity(field.dtype, triples.len());
        for &(v, m, e) in &triples {
            let idx = match side {
                0 => Some(v),
                1 => m,
                _ => e,
            };
            match idx {
                Some(i) => b.push(src.value(i)).map_err(VertexicaError::from)?,
                None => b.push_null(),
            }
        }
        cols.push(b.finish());
    }
    Ok(RecordBatch::new(schema, cols)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::message_batch;
    use vertexica_common::graph::EdgeList;
    use vertexica_common::VertexData;
    use vertexica_sql::Database;

    fn session_with_graph() -> GraphSession {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges(&EdgeList::from_pairs([(0, 1), (0, 2), (1, 2)])).unwrap();
        g
    }

    fn count_kind(batches: &[RecordBatch], kind: i64) -> usize {
        batches
            .iter()
            .flat_map(|b| (0..b.num_rows()).map(move |i| b.row(i)))
            .filter(|r| r[1] == Value::Int(kind))
            .count()
    }

    #[test]
    fn union_contains_all_three_kinds() {
        let g = session_with_graph();
        // Two messages to vertex 2.
        let msgs = message_batch(&[(2, 0, 1.0f64.to_bytes()), (2, 1, 2.0f64.to_bytes())]).unwrap();
        g.db().append_batches(&g.message_table(), &[msgs]).unwrap();

        let batches = assemble(&g, InputMode::TableUnion, true).unwrap();
        assert_eq!(count_kind(&batches, KIND_VERTEX), 3);
        assert_eq!(count_kind(&batches, KIND_EDGE), 3);
        assert_eq!(count_kind(&batches, KIND_MESSAGE), 2);
    }

    #[test]
    fn join_mode_reconstructs_same_multiset() {
        let g = session_with_graph();
        let msgs = message_batch(&[(0, 1, 1.5f64.to_bytes()), (0, 2, 2.5f64.to_bytes())]).unwrap();
        g.db().append_batches(&g.message_table(), &[msgs]).unwrap();

        let union = assemble(&g, InputMode::TableUnion, true).unwrap();
        for streaming_scan in [true, false] {
            let join = assemble(&g, InputMode::ThreeWayJoin, streaming_scan).unwrap();
            for kind in [KIND_VERTEX, KIND_EDGE, KIND_MESSAGE] {
                assert_eq!(
                    count_kind(&union, kind),
                    count_kind(&join, kind),
                    "kind {kind} mismatch (streaming_scan={streaming_scan})"
                );
            }
        }
    }

    #[test]
    fn empty_message_table_still_assembles() {
        let g = session_with_graph();
        let batches = assemble(&g, InputMode::TableUnion, true).unwrap();
        assert_eq!(count_kind(&batches, KIND_MESSAGE), 0);
        assert_eq!(count_kind(&batches, KIND_VERTEX), 3);
    }

    fn collect_chunks(g: &GraphSession, mode: InputMode, streaming_scan: bool) -> Vec<RecordBatch> {
        let mut chunks = Vec::new();
        assemble_chunks(g, mode, STREAM_CHUNK_ROWS, streaming_scan, &mut |b| {
            chunks.push(b);
            Ok(())
        })
        .unwrap();
        chunks
    }

    fn sorted_rows(batches: &[RecordBatch]) -> Vec<Vec<u8>> {
        let mut rows: Vec<Vec<u8>> =
            batches.iter().flat_map(|b| b.rows()).map(|r| format!("{r:?}").into_bytes()).collect();
        rows.sort();
        rows
    }

    #[test]
    fn streamed_chunks_match_materialized_union() {
        let g = session_with_graph();
        let msgs = message_batch(&[(2, 0, 1.0f64.to_bytes()), (1, 0, 2.0f64.to_bytes())]).unwrap();
        g.db().append_batches(&g.message_table(), &[msgs]).unwrap();

        let materialized = assemble(&g, InputMode::TableUnion, true).unwrap();
        for streaming_scan in [true, false] {
            let streamed = collect_chunks(&g, InputMode::TableUnion, streaming_scan);
            // Same rows (as a multiset), same canonical schema.
            assert_eq!(
                sorted_rows(&materialized),
                sorted_rows(&streamed),
                "streaming_scan={streaming_scan}"
            );
            for chunk in &streamed {
                assert_eq!(chunk.schema().len(), union_schema().len());
            }
            // Streaming produced at least one chunk per non-empty source
            // table, so no chunk reaches the full union size on its own.
            assert!(streamed.len() >= 3);
        }
    }

    #[test]
    fn streamed_join_mode_matches_materialized_join() {
        let g = session_with_graph();
        let msgs = message_batch(&[(2, 0, 1.0f64.to_bytes()), (1, 0, 2.0f64.to_bytes())]).unwrap();
        g.db().append_batches(&g.message_table(), &[msgs]).unwrap();
        // All four {materialized, chunked} × {streaming join, eager SQL
        // join} combinations must produce the same multiset.
        let reference = assemble(&g, InputMode::ThreeWayJoin, false).unwrap();
        for streaming_scan in [true, false] {
            let materialized = assemble(&g, InputMode::ThreeWayJoin, streaming_scan).unwrap();
            let streamed = collect_chunks(&g, InputMode::ThreeWayJoin, streaming_scan);
            assert_eq!(
                sorted_rows(&reference),
                sorted_rows(&materialized),
                "streaming_scan={streaming_scan}"
            );
            assert_eq!(
                sorted_rows(&reference),
                sorted_rows(&streamed),
                "streaming_scan={streaming_scan}"
            );
        }
    }

    #[test]
    fn streaming_scan_gauge_stays_below_eager() {
        // Several segments per source so one in-flight batch is genuinely
        // smaller than a whole table.
        let g = session_with_graph();
        for _ in 0..4 {
            let msgs =
                message_batch(&[(2, 0, 1.0f64.to_bytes()), (1, 0, 2.0f64.to_bytes())]).unwrap();
            g.db().append_batches(&g.message_table(), &[msgs]).unwrap();
        }
        let gauge = |streaming_scan: bool| {
            assemble_chunks(
                &g,
                InputMode::TableUnion,
                STREAM_CHUNK_ROWS,
                streaming_scan,
                &mut |_| Ok(()),
            )
            .unwrap()
        };
        let (streamed, eager) = (gauge(true), gauge(false));
        assert!(streamed > 0 && eager > 0);
        assert!(
            streamed < eager,
            "pull-based scan should hold one batch, not a table: {streamed} vs {eager}"
        );
    }

    #[test]
    fn oversized_chunks_are_split() {
        let rows: Vec<Vec<Value>> = (0..(STREAM_CHUNK_ROWS + 10))
            .map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::Int(KIND_VERTEX),
                    Value::Null,
                    Value::Null,
                    Value::Blob(1.0f64.to_bytes()),
                    Value::Bool(false),
                ]
            })
            .collect();
        let big = RecordBatch::from_rows(union_schema(), &rows).unwrap();
        let mut sizes = Vec::new();
        emit_capped(big, STREAM_CHUNK_ROWS, &mut |b| {
            sizes.push(b.num_rows());
            Ok(())
        })
        .unwrap();
        assert_eq!(sizes, vec![STREAM_CHUNK_ROWS, 10]);
    }

    #[test]
    fn custom_chunk_cap_bounds_every_chunk() {
        let g = session_with_graph();
        let mut sizes = Vec::new();
        assemble_chunks(&g, InputMode::TableUnion, 2, true, &mut |b| {
            sizes.push(b.num_rows());
            Ok(())
        })
        .unwrap();
        assert!(sizes.iter().all(|&n| n <= 2), "cap violated: {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 6); // 3 vertices + 3 edges
    }

    /// The plan-vs-scatter invariant for a given mode and scan path: the
    /// prescan's per-partition counts must equal what assemble actually
    /// delivers, at several partition counts.
    fn assert_plan_matches_scatter(g: &GraphSession, mode: InputMode, streaming_scan: bool) {
        use vertexica_storage::partition::StreamingPartitioner;
        for parts in [1usize, 3, 8] {
            let plan = partition_row_plan(g, mode, parts).unwrap().unwrap();
            assert_eq!(plan.len(), parts);
            let mut partitioner = StreamingPartitioner::new(vec![0], parts);
            assemble_chunks(g, mode, STREAM_CHUNK_ROWS, streaming_scan, &mut |b| {
                partitioner.push(&b).map_err(VertexicaError::from)
            })
            .unwrap();
            let scattered: Vec<u64> = partitioner
                .finish()
                .iter()
                .map(|p| p.iter().map(|b| b.num_rows() as u64).sum())
                .collect();
            assert_eq!(
                plan, scattered,
                "{mode:?}/{parts} partitions (streaming_scan={streaming_scan}): \
                 plan must equal the real scatter"
            );
        }
    }

    #[test]
    fn partition_row_plan_matches_actual_scatter() {
        let g = session_with_graph();
        let msgs = message_batch(&[(2, 0, 1.0f64.to_bytes()), (1, 0, 2.0f64.to_bytes())]).unwrap();
        g.db().append_batches(&g.message_table(), &[msgs]).unwrap();
        for streaming_scan in [true, false] {
            assert_plan_matches_scatter(&g, InputMode::TableUnion, streaming_scan);
        }
    }

    /// The join mode now has a row plan too (it is how its partitions seal):
    /// the prescan replays the dedup rules over the base tables, including
    /// duplicate edges/messages (which collapse) and messages to unknown
    /// vertices (which the LEFT JOIN drops).
    #[test]
    fn join_mode_row_plan_matches_actual_scatter() {
        let g = session_with_graph();
        // Duplicate messages (collapse), a message to a missing vertex
        // (dropped by the join), and a duplicate edge (collapses).
        let msgs = message_batch(&[
            (2, 0, 1.0f64.to_bytes()),
            (2, 0, 1.0f64.to_bytes()),
            (1, 0, 2.0f64.to_bytes()),
            (99, 0, 3.0f64.to_bytes()),
        ])
        .unwrap();
        g.db().append_batches(&g.message_table(), &[msgs]).unwrap();
        g.db()
            .execute(&format!(
                "INSERT INTO {} (src, dst, weight, created) VALUES (0, 1, 1.0, 0)",
                g.edge_table()
            ))
            .unwrap();
        for streaming_scan in [true, false] {
            assert_plan_matches_scatter(&g, InputMode::ThreeWayJoin, streaming_scan);
        }
    }

    #[test]
    fn join_mode_streams_multiple_chunks_with_global_dedup() {
        let g = session_with_graph();
        let msgs = message_batch(&[(0, 1, 1.5f64.to_bytes()), (0, 2, 2.5f64.to_bytes())]).unwrap();
        g.db().append_batches(&g.message_table(), &[msgs]).unwrap();

        // A tiny cap forces many chunks out of the join replay; dedup must
        // still be global (same multiset as the one-shot reshape).
        for streaming_scan in [true, false] {
            let mut chunks = Vec::new();
            assemble_chunks(&g, InputMode::ThreeWayJoin, 2, streaming_scan, &mut |b| {
                chunks.push(b);
                Ok(())
            })
            .unwrap();
            assert!(chunks.len() > 1, "expected the join replay to stream in pieces");
            assert!(chunks.iter().all(|b| b.num_rows() <= 2));
            let materialized = assemble(&g, InputMode::ThreeWayJoin, streaming_scan).unwrap();
            assert_eq!(
                sorted_rows(&materialized),
                sorted_rows(&chunks),
                "streaming_scan={streaming_scan}"
            );
        }
    }
}
