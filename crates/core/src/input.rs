//! Worker input assembly — the paper's **Table Unions** optimization (§2.3).
//!
//! To run a superstep the workers need, per vertex: its value and halt state,
//! its outgoing edges, and its incoming messages. "Traditional database
//! wisdom" would 3-way join the vertex, edge and message tables — and explode
//! (a vertex with *E* edges and *M* messages yields *E × M* join rows).
//! Vertexica instead renames the three tables to a **common schema** and
//! `UNION ALL`s them; workers then tell the tuple kinds apart. Both
//! strategies are implemented here (the join baseline feeds the ablation
//! benchmark), and both are expressed as actual SQL against the engine.

use std::sync::Arc;

use vertexica_storage::{Column, DataType, Field, RecordBatch, Schema, Value};

use crate::config::InputMode;
use crate::error::{VertexicaError, VertexicaResult};
use crate::session::GraphSession;

/// Default upper bound on rows per streamed input chunk
/// ([`crate::config::VertexicaConfig::stream_chunk_rows`] overrides it).
/// Storage segments are usually the natural chunk size; this cap only kicks
/// in when one segment is huge, keeping peak in-flight chunk bytes bounded.
pub const STREAM_CHUNK_ROWS: usize = 65_536;

/// Tuple-kind discriminator for vertex rows in the common schema.
pub const KIND_VERTEX: i64 = 0;
/// Tuple-kind discriminator for edge rows in the common schema.
pub const KIND_EDGE: i64 = 1;
/// Tuple-kind discriminator for message rows in the common schema.
pub const KIND_MESSAGE: i64 = 2;

/// The common schema the three tables are renamed to:
/// `(vid, kind, other, weight, payload, halted)` where
/// * vertex rows: `vid=id, payload=value, halted=halted`
/// * edge rows: `vid=src, other=dst, weight=weight`
/// * message rows: `vid=recipient, other=sender, payload=value`
pub fn union_schema() -> Arc<Schema> {
    Schema::new(vec![
        Field::not_null("vid", DataType::Int),
        Field::not_null("kind", DataType::Int),
        Field::new("other", DataType::Int),
        Field::new("weight", DataType::Float),
        Field::new("payload", DataType::Blob),
        Field::new("halted", DataType::Bool),
    ])
}

/// Assembles worker input in the configured mode, fully materialized.
///
/// This is the original (pre-streaming) form, kept for the materialized
/// pipeline and for equivalence testing; the superstep hot path uses
/// [`assemble_chunks`].
pub fn assemble(session: &GraphSession, mode: InputMode) -> VertexicaResult<Vec<RecordBatch>> {
    match mode {
        InputMode::TableUnion => assemble_union(session),
        InputMode::ThreeWayJoin => assemble_join(session),
    }
}

/// Streams worker input as union-schema chunks, invoking `sink` once per
/// chunk so the caller (the coordinator's streaming pipeline) can partition
/// and drop each chunk immediately — the full table union never exists in
/// memory at once.
///
/// In [`InputMode::TableUnion`] the three tables are scanned directly,
/// segment by segment, and each scanned batch is re-shaped into the common
/// schema with constant/null companion columns — the same rows the UNION ALL
/// query produces, without materializing their concatenation. Chunks larger
/// than `chunk_rows` are split. [`InputMode::ThreeWayJoin`] replays the join
/// result through the same sink: the joined table itself is produced by the
/// SQL engine, but the re-shaped (deduplicated) union-schema rows stream out
/// chunk by chunk instead of materializing end-to-end.
pub fn assemble_chunks(
    session: &GraphSession,
    mode: InputMode,
    chunk_rows: usize,
    sink: &mut dyn FnMut(RecordBatch) -> VertexicaResult<()>,
) -> VertexicaResult<()> {
    let chunk_rows = chunk_rows.max(1);
    match mode {
        InputMode::TableUnion => {
            let schema = union_schema();
            // Vertex rows: (id, value, halted) → (vid, 0, NULL, NULL, value, halted).
            for batch in session.db().scan_table(&session.vertex_table(), None, &[])? {
                let n = batch.num_rows();
                let chunk = RecordBatch::new(
                    schema.clone(),
                    vec![
                        batch.column(0).clone(),
                        Column::repeat(DataType::Int, &Value::Int(KIND_VERTEX), n)?,
                        Column::repeat(DataType::Int, &Value::Null, n)?,
                        Column::repeat(DataType::Float, &Value::Null, n)?,
                        batch.column(1).clone(),
                        batch.column(2).clone(),
                    ],
                )?;
                emit_capped(chunk, chunk_rows, sink)?;
            }
            // Edge rows: (src, dst, weight, …) → (src, 1, dst, weight, NULL, NULL).
            // Project to the three consumed columns; `created`/`etype` would
            // otherwise be decoded from every segment each superstep.
            for batch in session.db().scan_table(&session.edge_table(), Some(&[0, 1, 2]), &[])? {
                let n = batch.num_rows();
                let chunk = RecordBatch::new(
                    schema.clone(),
                    vec![
                        batch.column(0).clone(),
                        Column::repeat(DataType::Int, &Value::Int(KIND_EDGE), n)?,
                        batch.column(1).clone(),
                        batch.column(2).clone(),
                        Column::repeat(DataType::Blob, &Value::Null, n)?,
                        Column::repeat(DataType::Bool, &Value::Null, n)?,
                    ],
                )?;
                emit_capped(chunk, chunk_rows, sink)?;
            }
            // Message rows: (recipient, sender, value) → (recipient, 2, sender, NULL, value, NULL).
            for batch in session.db().scan_table(&session.message_table(), None, &[])? {
                let n = batch.num_rows();
                let chunk = RecordBatch::new(
                    schema.clone(),
                    vec![
                        batch.column(0).clone(),
                        Column::repeat(DataType::Int, &Value::Int(KIND_MESSAGE), n)?,
                        batch.column(1).clone(),
                        Column::repeat(DataType::Float, &Value::Null, n)?,
                        batch.column(2).clone(),
                        Column::repeat(DataType::Bool, &Value::Null, n)?,
                    ],
                )?;
                emit_capped(chunk, chunk_rows, sink)?;
            }
            Ok(())
        }
        InputMode::ThreeWayJoin => assemble_join_chunks(session, chunk_rows, sink),
    }
}

/// Feeds `chunk` to the sink, split into `chunk_rows`-row pieces when
/// oversized.
fn emit_capped(
    chunk: RecordBatch,
    chunk_rows: usize,
    sink: &mut dyn FnMut(RecordBatch) -> VertexicaResult<()>,
) -> VertexicaResult<()> {
    let n = chunk.num_rows();
    if n <= chunk_rows {
        return sink(chunk);
    }
    let mut start = 0;
    while start < n {
        let end = (start + chunk_rows).min(n);
        let indices: Vec<usize> = (start..end).collect();
        sink(chunk.take(&indices).map_err(VertexicaError::from)?)?;
        start = end;
    }
    Ok(())
}

/// How much input each compute partition will eventually receive, for
/// pipelined per-partition completion detection: `plan[p]` is the number of
/// union-schema rows hashing (on `vid`) to partition `p`.
///
/// This is how the chunk sources "declare which partitions they can still
/// touch": a cheap prescan of each source table's **key column only** (one
/// BIGINT column out of six — the blob payloads that dominate assemble are
/// never decoded) hashes every future row with the exact rule the scatter
/// uses, so the moment partition `p` has received `plan[p]` rows, no later
/// chunk can touch it and its compute task can launch. Returns `None` for
/// [`InputMode::ThreeWayJoin`]: the join replay's row placement isn't known
/// until the join runs, so its partitions stay open-ended (sealed only at
/// end-of-stream).
pub fn partition_row_plan(
    session: &GraphSession,
    mode: InputMode,
    num_partitions: usize,
) -> VertexicaResult<Option<Vec<u64>>> {
    if mode != InputMode::TableUnion {
        return Ok(None);
    }
    let num_partitions = num_partitions.max(1);
    let mut plan = vec![0u64; num_partitions];
    // The three sources' key columns: vertex id, edge src, message
    // recipient — each is column 0 of its table and becomes `vid` (the
    // partition key) in the union schema.
    for table in [session.vertex_table(), session.edge_table(), session.message_table()] {
        for batch in session.db().scan_table(&table, Some(&[0]), &[])? {
            if num_partitions == 1 {
                plan[0] += batch.num_rows() as u64;
                continue;
            }
            let assign = vertexica_storage::partition::partition_assignments(
                std::slice::from_ref(&batch),
                &[0],
                num_partitions,
            );
            for &p in &assign[0] {
                plan[p] += 1;
            }
        }
    }
    Ok(Some(plan))
}

/// The paper's strategy: rename to a common schema and UNION ALL.
fn assemble_union(session: &GraphSession) -> VertexicaResult<Vec<RecordBatch>> {
    let sql = format!(
        "SELECT id AS vid, 0 AS kind, CAST(NULL AS BIGINT) AS other, \
                CAST(NULL AS FLOAT) AS weight, value AS payload, halted \
         FROM {v} \
         UNION ALL \
         SELECT src, 1, dst, weight, CAST(NULL AS VARBINARY), CAST(NULL AS BOOLEAN) FROM {e} \
         UNION ALL \
         SELECT recipient, 2, sender, CAST(NULL AS FLOAT), value, CAST(NULL AS BOOLEAN) \
         FROM {m}",
        v = session.vertex_table(),
        e = session.edge_table(),
        m = session.message_table(),
    );
    let batches = session.db().execute(&sql)?.into_batches()?;
    // Re-stamp with the canonical schema (names already line up).
    let schema = union_schema();
    batches
        .into_iter()
        .map(|b| RecordBatch::new(schema.clone(), b.columns().to_vec()).map_err(Into::into))
        .collect()
}

/// The naive baseline, materialized: collects the streaming reshape of
/// [`assemble_join_chunks`] (kept for the materialized pipeline and tests).
fn assemble_join(session: &GraphSession) -> VertexicaResult<Vec<RecordBatch>> {
    let mut out = Vec::new();
    assemble_join_chunks(session, STREAM_CHUNK_ROWS, &mut |b| {
        out.push(b);
        Ok(())
    })?;
    Ok(out)
}

/// The naive baseline: a 3-way join producing the per-vertex cartesian
/// product of edges × messages, re-shaped (with deduplication) into the
/// common schema so the same worker can consume it. The join cost *and* the
/// dedup cost are the point of the ablation.
///
/// The join result itself comes out of the SQL engine, but the re-shape now
/// **streams**: each join batch is deduplicated against the running seen-sets
/// and its surviving union-schema rows are emitted to `sink` immediately, so
/// the re-shaped table never materializes end-to-end (the seen-sets — keys
/// only — are the remaining inherent memory cost of the join formulation).
///
/// Limitation (inherent to the join formulation): duplicate edges and
/// byte-identical duplicate messages to the same vertex collapse. The default
/// union mode has no such restriction.
fn assemble_join_chunks(
    session: &GraphSession,
    chunk_rows: usize,
    sink: &mut dyn FnMut(RecordBatch) -> VertexicaResult<()>,
) -> VertexicaResult<()> {
    let sql = format!(
        "SELECT v.id, v.value, v.halted, m.sender, m.value AS mvalue, e.dst, e.weight \
         FROM {v} v \
         LEFT JOIN {m} m ON m.recipient = v.id \
         LEFT JOIN {e} e ON e.src = v.id",
        v = session.vertex_table(),
        e = session.edge_table(),
        m = session.message_table(),
    );
    let batches = session.db().execute(&sql)?.into_batches()?;

    // Re-shape into union-schema rows, deduplicating the cartesian blowup.
    // The seen-sets span batches; the reshaped rows do not.
    use vertexica_common::FxHashSet;
    let mut seen_vertex: FxHashSet<i64> = FxHashSet::default();
    let mut seen_edge: FxHashSet<(i64, i64, u64)> = FxHashSet::default();
    let mut seen_msg: FxHashSet<(i64, i64, Vec<u8>)> = FxHashSet::default();

    let schema = union_schema();
    for batch in &batches {
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for i in 0..batch.num_rows() {
            let r = batch.row(i);
            let vid = r[0]
                .as_int()
                .ok_or_else(|| VertexicaError::Runtime("join input: vertex id is null".into()))?;
            if seen_vertex.insert(vid) {
                rows.push(vec![
                    Value::Int(vid),
                    Value::Int(KIND_VERTEX),
                    Value::Null,
                    Value::Null,
                    r[1].clone(),
                    r[2].clone(),
                ]);
            }
            if let Some(sender) = r[3].as_int() {
                let bytes = r[4].as_blob().map(|b| b.to_vec()).unwrap_or_default();
                if seen_msg.insert((vid, sender, bytes.clone())) {
                    rows.push(vec![
                        Value::Int(vid),
                        Value::Int(KIND_MESSAGE),
                        Value::Int(sender),
                        Value::Null,
                        Value::Blob(bytes),
                        Value::Null,
                    ]);
                }
            }
            if let Some(dst) = r[5].as_int() {
                let w = r[6].as_float().unwrap_or(1.0);
                if seen_edge.insert((vid, dst, w.to_bits())) {
                    rows.push(vec![
                        Value::Int(vid),
                        Value::Int(KIND_EDGE),
                        Value::Int(dst),
                        Value::Float(w),
                        Value::Null,
                        Value::Null,
                    ]);
                }
            }
        }
        if !rows.is_empty() {
            emit_capped(RecordBatch::from_rows(schema.clone(), &rows)?, chunk_rows, sink)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::message_batch;
    use vertexica_common::graph::EdgeList;
    use vertexica_common::VertexData;
    use vertexica_sql::Database;

    fn session_with_graph() -> GraphSession {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges(&EdgeList::from_pairs([(0, 1), (0, 2), (1, 2)])).unwrap();
        g
    }

    fn count_kind(batches: &[RecordBatch], kind: i64) -> usize {
        batches
            .iter()
            .flat_map(|b| (0..b.num_rows()).map(move |i| b.row(i)))
            .filter(|r| r[1] == Value::Int(kind))
            .count()
    }

    #[test]
    fn union_contains_all_three_kinds() {
        let g = session_with_graph();
        // Two messages to vertex 2.
        let msgs = message_batch(&[(2, 0, 1.0f64.to_bytes()), (2, 1, 2.0f64.to_bytes())]).unwrap();
        g.db().append_batches(&g.message_table(), &[msgs]).unwrap();

        let batches = assemble(&g, InputMode::TableUnion).unwrap();
        assert_eq!(count_kind(&batches, KIND_VERTEX), 3);
        assert_eq!(count_kind(&batches, KIND_EDGE), 3);
        assert_eq!(count_kind(&batches, KIND_MESSAGE), 2);
    }

    #[test]
    fn join_mode_reconstructs_same_multiset() {
        let g = session_with_graph();
        let msgs = message_batch(&[(0, 1, 1.5f64.to_bytes()), (0, 2, 2.5f64.to_bytes())]).unwrap();
        g.db().append_batches(&g.message_table(), &[msgs]).unwrap();

        let union = assemble(&g, InputMode::TableUnion).unwrap();
        let join = assemble(&g, InputMode::ThreeWayJoin).unwrap();
        for kind in [KIND_VERTEX, KIND_EDGE, KIND_MESSAGE] {
            assert_eq!(count_kind(&union, kind), count_kind(&join, kind), "kind {kind} mismatch");
        }
    }

    #[test]
    fn empty_message_table_still_assembles() {
        let g = session_with_graph();
        let batches = assemble(&g, InputMode::TableUnion).unwrap();
        assert_eq!(count_kind(&batches, KIND_MESSAGE), 0);
        assert_eq!(count_kind(&batches, KIND_VERTEX), 3);
    }

    fn collect_chunks(g: &GraphSession, mode: InputMode) -> Vec<RecordBatch> {
        let mut chunks = Vec::new();
        assemble_chunks(g, mode, STREAM_CHUNK_ROWS, &mut |b| {
            chunks.push(b);
            Ok(())
        })
        .unwrap();
        chunks
    }

    fn sorted_rows(batches: &[RecordBatch]) -> Vec<Vec<u8>> {
        let mut rows: Vec<Vec<u8>> =
            batches.iter().flat_map(|b| b.rows()).map(|r| format!("{r:?}").into_bytes()).collect();
        rows.sort();
        rows
    }

    #[test]
    fn streamed_chunks_match_materialized_union() {
        let g = session_with_graph();
        let msgs = message_batch(&[(2, 0, 1.0f64.to_bytes()), (1, 0, 2.0f64.to_bytes())]).unwrap();
        g.db().append_batches(&g.message_table(), &[msgs]).unwrap();

        let materialized = assemble(&g, InputMode::TableUnion).unwrap();
        let streamed = collect_chunks(&g, InputMode::TableUnion);
        // Same rows (as a multiset), same canonical schema.
        assert_eq!(sorted_rows(&materialized), sorted_rows(&streamed));
        for chunk in &streamed {
            assert_eq!(chunk.schema().len(), union_schema().len());
        }
        // Streaming produced at least one chunk per non-empty source table,
        // so no chunk reaches the full union size on its own.
        assert!(streamed.len() >= 3);
    }

    #[test]
    fn streamed_join_mode_matches_materialized_join() {
        let g = session_with_graph();
        let materialized = assemble(&g, InputMode::ThreeWayJoin).unwrap();
        let streamed = collect_chunks(&g, InputMode::ThreeWayJoin);
        assert_eq!(sorted_rows(&materialized), sorted_rows(&streamed));
    }

    #[test]
    fn oversized_chunks_are_split() {
        let rows: Vec<Vec<Value>> = (0..(STREAM_CHUNK_ROWS + 10))
            .map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::Int(KIND_VERTEX),
                    Value::Null,
                    Value::Null,
                    Value::Blob(1.0f64.to_bytes()),
                    Value::Bool(false),
                ]
            })
            .collect();
        let big = RecordBatch::from_rows(union_schema(), &rows).unwrap();
        let mut sizes = Vec::new();
        emit_capped(big, STREAM_CHUNK_ROWS, &mut |b| {
            sizes.push(b.num_rows());
            Ok(())
        })
        .unwrap();
        assert_eq!(sizes, vec![STREAM_CHUNK_ROWS, 10]);
    }

    #[test]
    fn custom_chunk_cap_bounds_every_chunk() {
        let g = session_with_graph();
        let mut sizes = Vec::new();
        assemble_chunks(&g, InputMode::TableUnion, 2, &mut |b| {
            sizes.push(b.num_rows());
            Ok(())
        })
        .unwrap();
        assert!(sizes.iter().all(|&n| n <= 2), "cap violated: {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 6); // 3 vertices + 3 edges
    }

    #[test]
    fn partition_row_plan_matches_actual_scatter() {
        use vertexica_storage::partition::StreamingPartitioner;
        let g = session_with_graph();
        let msgs = message_batch(&[(2, 0, 1.0f64.to_bytes()), (1, 0, 2.0f64.to_bytes())]).unwrap();
        g.db().append_batches(&g.message_table(), &[msgs]).unwrap();

        for parts in [1usize, 3, 8] {
            let plan = partition_row_plan(&g, InputMode::TableUnion, parts).unwrap().unwrap();
            assert_eq!(plan.len(), parts);
            let mut partitioner = StreamingPartitioner::new(vec![0], parts);
            assemble_chunks(&g, InputMode::TableUnion, STREAM_CHUNK_ROWS, &mut |b| {
                partitioner.push(&b).map_err(VertexicaError::from)
            })
            .unwrap();
            let scattered: Vec<u64> = partitioner
                .finish()
                .iter()
                .map(|p| p.iter().map(|b| b.num_rows() as u64).sum())
                .collect();
            assert_eq!(plan, scattered, "{parts} partitions: plan must equal the real scatter");
        }
    }

    #[test]
    fn join_mode_has_no_row_plan() {
        let g = session_with_graph();
        assert!(partition_row_plan(&g, InputMode::ThreeWayJoin, 4).unwrap().is_none());
    }

    #[test]
    fn join_mode_streams_multiple_chunks_with_global_dedup() {
        let g = session_with_graph();
        let msgs = message_batch(&[(0, 1, 1.5f64.to_bytes()), (0, 2, 2.5f64.to_bytes())]).unwrap();
        g.db().append_batches(&g.message_table(), &[msgs]).unwrap();

        // A tiny cap forces many chunks out of the join replay; dedup must
        // still be global (same multiset as the one-shot reshape).
        let mut chunks = Vec::new();
        assemble_chunks(&g, InputMode::ThreeWayJoin, 2, &mut |b| {
            chunks.push(b);
            Ok(())
        })
        .unwrap();
        assert!(chunks.len() > 1, "expected the join replay to stream in pieces");
        assert!(chunks.iter().all(|b| b.num_rows() <= 2));
        let materialized = assemble(&g, InputMode::ThreeWayJoin).unwrap();
        assert_eq!(sorted_rows(&materialized), sorted_rows(&chunks));
    }
}
