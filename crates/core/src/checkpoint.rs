//! Superstep checkpointing.
//!
//! The paper's pitch (§1) includes relational features that dedicated graph
//! systems forgo — "transactions, checkpointing and recovery, fault
//! tolerance". Here the coordinator can persist the vertex and message
//! tables plus the aggregator state every N supersteps and resume after a
//! crash ([`crate::coordinator::resume_program`]).

use std::io::Write;
use std::path::Path;

use vertexica_common::hash::FxHashMap;
use vertexica_storage::persist;

use crate::error::{VertexicaError, VertexicaResult};
use crate::session::GraphSession;

/// State recovered from a checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointState {
    /// The last *completed* superstep.
    pub superstep: u64,
    pub aggregates: FxHashMap<String, f64>,
}

/// Writes a checkpoint: vertex table, message table, and a metadata file.
pub fn save(
    session: &GraphSession,
    dir: impl AsRef<Path>,
    superstep: u64,
    aggregates: &FxHashMap<String, f64>,
) -> VertexicaResult<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)
        .map_err(|e| VertexicaError::Checkpoint(format!("create dir: {e}")))?;

    for table_name in [session.vertex_table(), session.message_table()] {
        let table = session.db().catalog().get(&table_name)?;
        let guard = table.read();
        persist::write_table(&guard, dir.join(format!("{table_name}.vxtb")))?;
    }

    let mut meta = std::fs::File::create(dir.join("meta.txt"))
        .map_err(|e| VertexicaError::Checkpoint(format!("create meta: {e}")))?;
    writeln!(meta, "superstep={superstep}")
        .and_then(|_| {
            let mut names: Vec<&String> = aggregates.keys().collect();
            names.sort();
            for name in names {
                writeln!(meta, "agg.{name}={}", aggregates[name])?;
            }
            Ok(())
        })
        .map_err(|e| VertexicaError::Checkpoint(format!("write meta: {e}")))?;
    Ok(())
}

/// Restores a checkpoint into the session's tables and returns the state.
pub fn restore(session: &GraphSession, dir: impl AsRef<Path>) -> VertexicaResult<CheckpointState> {
    let dir = dir.as_ref();
    let meta = std::fs::read_to_string(dir.join("meta.txt"))
        .map_err(|e| VertexicaError::Checkpoint(format!("read meta: {e}")))?;
    let mut superstep: Option<u64> = None;
    let mut aggregates = FxHashMap::default();
    for line in meta.lines() {
        let Some((key, value)) = line.split_once('=') else { continue };
        if key == "superstep" {
            superstep = value.parse().ok();
        } else if let Some(name) = key.strip_prefix("agg.") {
            if let Ok(v) = value.parse::<f64>() {
                aggregates.insert(name.to_string(), v);
            }
        }
    }
    let superstep =
        superstep.ok_or_else(|| VertexicaError::Checkpoint("meta.txt missing superstep".into()))?;

    for table_name in [session.vertex_table(), session.message_table()] {
        let restored = persist::read_table(dir.join(format!("{table_name}.vxtb")))?;
        let live = session.db().catalog().get(&table_name)?;
        let mut guard = live.write();
        guard.truncate()?;
        let batches = restored.scan(None, &[])?;
        for b in &batches {
            guard.append_batch(b)?;
        }
    }
    Ok(CheckpointState { superstep, aggregates })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::message_batch;
    use std::sync::Arc;
    use vertexica_common::graph::EdgeList;
    use vertexica_common::VertexData;
    use vertexica_sql::Database;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("vertexica_ckpt_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn save_restore_roundtrip() {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db.clone(), "g").unwrap();
        g.load_edges(&EdgeList::from_pairs([(0, 1), (1, 2)])).unwrap();
        let msgs = message_batch(&[(1, 0, 4.25f64.to_bytes())]).unwrap();
        db.append_batches(&g.message_table(), &[msgs]).unwrap();

        let mut aggs = FxHashMap::default();
        aggs.insert("sum".to_string(), 12.5);
        let dir = temp_dir("roundtrip");
        save(&g, &dir, 7, &aggs).unwrap();

        // Clobber live state.
        db.execute(&format!("DELETE FROM {}", g.message_table())).unwrap();
        db.execute(&format!("DELETE FROM {} WHERE id = 0", g.vertex_table())).unwrap();

        let state = restore(&g, &dir).unwrap();
        assert_eq!(state.superstep, 7);
        assert_eq!(state.aggregates.get("sum"), Some(&12.5));
        assert_eq!(g.num_vertices().unwrap(), 3);
        assert_eq!(
            db.query_int(&format!("SELECT COUNT(*) FROM {}", g.message_table())).unwrap(),
            1
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_without_checkpoint_fails() {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        let dir = temp_dir("missing");
        std::fs::remove_dir_all(&dir).ok();
        assert!(restore(&g, &dir).is_err());
    }

    #[test]
    fn corrupt_meta_fails() {
        let db = Arc::new(Database::new());
        let g = GraphSession::create(db, "g").unwrap();
        g.load_edges(&EdgeList::from_pairs([(0, 1)])).unwrap();
        let dir = temp_dir("corrupt");
        save(&g, &dir, 3, &FxHashMap::default()).unwrap();
        std::fs::write(dir.join("meta.txt"), "nonsense").unwrap();
        assert!(restore(&g, &dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
