//! Minimal offline stand-in for the crates.io `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, RwLock}` with parking_lot's panic-free locking
//! API (`lock()`/`read()`/`write()` return guards directly). Poisoning is
//! deliberately ignored — like the real parking_lot, a panic while holding a
//! lock does not poison it for later users.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }
}
