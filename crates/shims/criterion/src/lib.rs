//! Minimal offline stand-in for the crates.io `criterion` crate.
//!
//! Implements the subset the bench targets use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the `criterion_group!`
//! / `criterion_main!` macros) with a plain wall-clock harness: each
//! benchmark runs a short warmup and `sample_size` timed samples, and prints
//! min/mean per-iteration times. No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle, one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group {name} ==");
        BenchmarkGroup { _parent: self, name, sample_size: 10 }
    }
}

/// Identifies one benchmark within a group, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { repr: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { repr: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { repr: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { repr: s }
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> String {
        id.repr
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new() };
        // Warmup sample (discarded) + timed samples.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        b.report(&self.name, &id.repr);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        drop(std::hint::black_box(out));
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            eprintln!("{group}/{id}: no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        eprintln!("{group}/{id}: mean {mean:?}, min {min:?} over {} samples", self.samples.len());
    }
}

/// Re-export of `std::hint::black_box`, matching criterion's API.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        let mut runs = 0usize;
        group.sample_size(3).bench_function("noop", |b| {
            runs += 1;
            b.iter(|| 1 + 1)
        });
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke2");
        group.sample_size(2).bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
    }
}
