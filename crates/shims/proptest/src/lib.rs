//! Minimal offline stand-in for the crates.io `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple strategies, [`any`], [`Just`], weighted
//! [`prop_oneof!`], `collection::vec`, `option::of`, and a tiny
//! regex-subset string strategy (`.{a,b}` and `[x-y]{a,b}` forms).
//!
//! Differences from real proptest: inputs are generated from a fixed
//! per-test seed (fully deterministic across runs) and failures are **not
//! shrunk** — the failing case panics as-is.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Per-run configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for one property test.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ 0x5ee3_11a9)
}

/// A generator of test inputs.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Arbitrary bit patterns: includes subnormals, infinities and NaNs,
    /// mirroring proptest's full-range `any::<f64>()`.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// String strategy from a regex **subset**: a single atom (`.` or a
/// character class like `[a-z0-9_]`) followed by an optional `{a,b}`, `{n}`,
/// `*` or `+` quantifier. Anything else panics with a clear message.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (pool, min, max) = parse_regex_subset(self);
        let len = if min == max { min } else { rng.gen_range(min..=max) };
        (0..len).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
    }
}

fn parse_regex_subset(pattern: &str) -> (Vec<char>, usize, usize) {
    let mut chars = pattern.chars().peekable();
    let pool: Vec<char> = match chars.next() {
        Some('.') => {
            // Printable ASCII plus a few multibyte chars to exercise UTF-8.
            let mut p: Vec<char> = (0x20u8..0x7F).map(|b| b as char).collect();
            p.extend(['é', '✓', 'λ', '中']);
            p
        }
        Some('[') => {
            let mut p = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                match chars.next() {
                    Some(']') => break,
                    Some('-') if prev.is_some() && chars.peek().is_some_and(|&c| c != ']') => {
                        let lo = prev.take().unwrap();
                        let hi = chars.next().unwrap();
                        for c in lo as u32..=hi as u32 {
                            if let Some(ch) = char::from_u32(c) {
                                p.push(ch);
                            }
                        }
                    }
                    Some(c) => {
                        if let Some(prev) = prev.replace(c) {
                            p.push(prev);
                        }
                    }
                    None => panic!("proptest shim: unterminated class in {pattern:?}"),
                }
            }
            if let Some(prev) = prev {
                p.push(prev);
            }
            p
        }
        other => panic!("proptest shim: unsupported regex {pattern:?} (at {other:?})"),
    };
    let (min, max) = match chars.next() {
        None => (1, 1),
        Some('*') => (0, 16),
        Some('+') => (1, 16),
        Some('{') => {
            let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
            match spec.split_once(',') {
                Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
                None => {
                    let n = spec.trim().parse().unwrap();
                    (n, n)
                }
            }
        }
        Some(c) => panic!("proptest shim: unsupported quantifier {c:?} in {pattern:?}"),
    };
    assert!(chars.next().is_none(), "proptest shim: unsupported trailing syntax in {pattern:?}");
    (pool, min, max)
}

/// Weighted union of boxed strategies — the engine behind [`prop_oneof!`].
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        let total = variants.iter().map(|(w, _)| *w).sum();
        Union { variants, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total as u64) as u32;
        for (w, s) in &self.variants {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Accepted size specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `collection::vec(strategy, size)` — vectors of generated elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct OptionStrategy<S>(S);

    /// `option::of(strategy)` — `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_each {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_each! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 0u64..10, b in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!(a < 10);
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..4, 10u32..14).prop_map(|(x, y)| (y, x))) {
            prop_assert!(pair.0 >= 10 && pair.1 < 4);
        }

        #[test]
        fn flat_map_depends_on_outer(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u64..10, n..n + 1))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn regex_subset_strings(s in "[a-c]{2,4}", t in ".{0,8}") {
            prop_assert!((2..=4).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(t.chars().count() <= 8);
        }

        #[test]
        fn oneof_weighted(v in prop_oneof![1 => Just(0u8), 9 => Just(1u8)]) {
            prop_assert!(v <= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s: String = Strategy::generate(&".{0,40}", &mut a);
        let t: String = Strategy::generate(&".{0,40}", &mut b);
        assert_eq!(s, t);
    }

    #[test]
    #[should_panic(expected = "unsupported regex")]
    fn unsupported_regex_panics() {
        let _ = Strategy::generate(&"(a|b)+", &mut crate::test_rng("y"));
    }
}
