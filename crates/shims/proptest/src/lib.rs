//! Minimal offline stand-in for the crates.io `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple strategies, [`any`], [`Just`], weighted
//! [`prop_oneof!`], `collection::vec`, `option::of`, and a tiny
//! regex-subset string strategy (`.{a,b}` and `[x-y]{a,b}` forms).
//!
//! Differences from real proptest: inputs are generated from a fixed
//! per-test seed (fully deterministic across runs) and shrinking is
//! **two-level**: value-level (integer ranges/`any` shrink toward their
//! lower bound / zero, vectors shrink by truncation plus element-wise
//! shrinking, tuples shrink component-wise, strings shrink by dropping
//! characters) plus generator-level **RNG-tape shrinking** — every raw
//! `next_u64` draw made while generating a case is recorded on a tape, and
//! candidates are produced by laddering individual tape entries toward zero
//! and regenerating. Tape shrinking is what minimizes `prop_map`ped,
//! `prop_flat_map`ped and `prop_oneof!` values, whose generating input is
//! not recoverable from the value itself. A failing case is greedily
//! re-minimized and the panic reports the reduced input.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Per-run configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// The RNG handed to strategies: a [`StdRng`] stream that can additionally
/// **record** its raw draws onto a tape, or **replay** a (possibly mutated)
/// tape.
///
/// Recording + replaying is the seam generator-side shrinking runs through:
/// a failing case's value is a deterministic function of its tape, so
/// shrinking the *tape* (and regenerating) shrinks values that have no
/// value-level shrinker — mapped, flat-mapped and `prop_oneof!` outputs.
pub struct TestRng {
    inner: StdRng,
    /// Draws recorded while `recording` (drained by [`generate_recorded`]).
    tape: Vec<u64>,
    recording: bool,
    /// Pending replay entries, served before `inner`.
    replay: std::collections::VecDeque<u64>,
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        let v = match self.replay.pop_front() {
            Some(v) => v,
            None => self.inner.next_u64(),
        };
        if self.recording {
            self.tape.push(v);
        }
        v
    }
}

/// Builds the deterministic RNG for one property test.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng {
        inner: StdRng::seed_from_u64(h ^ 0x5ee3_11a9),
        tape: Vec::new(),
        recording: false,
        replay: std::collections::VecDeque::new(),
    }
}

/// Generates one case while recording the raw draw tape that produced it.
pub fn generate_recorded<S: Strategy>(strategy: &S, rng: &mut TestRng) -> (S::Value, Vec<u64>) {
    rng.tape.clear();
    rng.recording = true;
    let value = strategy.generate(rng);
    rng.recording = false;
    (value, std::mem::take(&mut rng.tape))
}

/// Regenerates a value from a (possibly mutated) draw tape. If the mutated
/// tape changes the generator's control flow enough to need *more* draws
/// than it holds, the extra draws come from a fixed-seed fallback stream, so
/// replay is always total and deterministic.
pub fn replay_tape<S: Strategy>(strategy: &S, tape: &[u64]) -> S::Value {
    let mut rng = TestRng {
        inner: StdRng::seed_from_u64(0x7a9e_7a9e),
        tape: Vec::new(),
        recording: false,
        replay: tape.iter().copied().collect(),
    };
    strategy.generate(&mut rng)
}

/// A generator of test inputs.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, most aggressive
    /// first. The default is no shrinking; integer, vector, tuple and string
    /// strategies override it.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        (**self).shrink(value)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Candidate simplifications of a failing value (see
    /// [`Strategy::shrink`]). Defaults to none.
    fn shrink_value(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }

            /// Shrinks toward zero on a binary ladder:
            /// `[0, v ∓ |v|/2, v ∓ |v|/4, …, v ∓ 1]` — greedy adoption of
            /// the first still-failing candidate converges to the failure
            /// boundary in O(log²|v|) probes.
            fn shrink_value(&self) -> Vec<$t> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0 as $t];
                let mut delta = (v as i128) / 2; // truncates toward zero
                while delta != 0 {
                    out.push(((v as i128) - delta) as $t);
                    delta /= 2;
                }
                out
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink_value(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    /// Arbitrary bit patterns: includes subnormals, infinities and NaNs,
    /// mirroring proptest's full-range `any::<f64>()`.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_value()
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Integer shrink candidates toward the range's lower bound `lo`, on a
/// binary ladder: `[lo, v - span/2, v - span/4, …, v - 1]` (most aggressive
/// first). Greedy first-failing adoption converges to the failure boundary
/// in O(log² span) probes.
macro_rules! shrink_toward {
    ($t:ty, $lo:expr, $v:expr) => {{
        let lo: $t = $lo;
        let v: $t = $v;
        // i128 math sidesteps overflow on extreme signed ranges.
        let span = (v as i128) - (lo as i128);
        if span <= 0 {
            Vec::new()
        } else {
            let mut out = vec![lo];
            let mut delta = span / 2;
            while delta > 0 {
                out.push(((v as i128) - delta) as $t);
                delta /= 2;
            }
            out
        }
    }};
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward!($t, self.start, *value)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward!($t, *self.start(), *value)
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            /// Component-wise shrinking: each candidate replaces exactly one
            /// component with one of its strategy's shrink candidates.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);

/// String strategy from a regex **subset**: a single atom (`.` or a
/// character class like `[a-z0-9_]`) followed by an optional `{a,b}`, `{n}`,
/// `*` or `+` quantifier. Anything else panics with a clear message.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (pool, min, max) = parse_regex_subset(self);
        let len = if min == max { min } else { rng.gen_range(min..=max) };
        (0..len).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
    }

    /// Shrinks by dropping characters on a binary ladder down to the
    /// quantifier's minimum length.
    fn shrink(&self, value: &String) -> Vec<String> {
        let (_, min, _) = parse_regex_subset(self);
        let n = value.chars().count();
        if n <= min {
            return Vec::new();
        }
        let mut out: Vec<String> = vec![value.chars().take(min).collect()];
        let mut delta = (n - min) / 2;
        while delta > 0 {
            out.push(value.chars().take(n - delta).collect());
            delta /= 2;
        }
        out
    }
}

fn parse_regex_subset(pattern: &str) -> (Vec<char>, usize, usize) {
    let mut chars = pattern.chars().peekable();
    let pool: Vec<char> = match chars.next() {
        Some('.') => {
            // Printable ASCII plus a few multibyte chars to exercise UTF-8.
            let mut p: Vec<char> = (0x20u8..0x7F).map(|b| b as char).collect();
            p.extend(['é', '✓', 'λ', '中']);
            p
        }
        Some('[') => {
            let mut p = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                match chars.next() {
                    Some(']') => break,
                    Some('-') if prev.is_some() && chars.peek().is_some_and(|&c| c != ']') => {
                        let lo = prev.take().unwrap();
                        let hi = chars.next().unwrap();
                        for c in lo as u32..=hi as u32 {
                            if let Some(ch) = char::from_u32(c) {
                                p.push(ch);
                            }
                        }
                    }
                    Some(c) => {
                        if let Some(prev) = prev.replace(c) {
                            p.push(prev);
                        }
                    }
                    None => panic!("proptest shim: unterminated class in {pattern:?}"),
                }
            }
            if let Some(prev) = prev {
                p.push(prev);
            }
            p
        }
        other => panic!("proptest shim: unsupported regex {pattern:?} (at {other:?})"),
    };
    let (min, max) = match chars.next() {
        None => (1, 1),
        Some('*') => (0, 16),
        Some('+') => (1, 16),
        Some('{') => {
            let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
            match spec.split_once(',') {
                Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
                None => {
                    let n = spec.trim().parse().unwrap();
                    (n, n)
                }
            }
        }
        Some(c) => panic!("proptest shim: unsupported quantifier {c:?} in {pattern:?}"),
    };
    assert!(chars.next().is_none(), "proptest shim: unsupported trailing syntax in {pattern:?}");
    (pool, min, max)
}

/// Weighted union of boxed strategies — the engine behind [`prop_oneof!`].
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        let total = variants.iter().map(|(w, _)| *w).sum();
        Union { variants, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total as u64) as u32;
        for (w, s) in &self.variants {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Accepted size specifications for [`vec`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `collection::vec(strategy, size)` — vectors of generated elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        /// Shrinks by prefix truncation on a binary ladder down to the
        /// minimum length, then element-wise via the element strategy.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let n = value.len();
            let min = self.size.min;
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            if n > min {
                out.push(value[..min].to_vec());
                let mut delta = (n - min) / 2;
                while delta > 0 {
                    out.push(value[..n - delta].to_vec());
                    delta /= 2;
                }
            }
            for i in 0..n {
                for cand in self.element.shrink(&value[i]) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct OptionStrategy<S>(S);

    /// `option::of(strategy)` — `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Cap on shrink attempts per failing case (candidate evaluations).
const MAX_SHRINK_STEPS: usize = 1024;

/// RAII guard that swaps in a no-op panic hook (process-global, reference
/// counted so overlapping probe phases from concurrent tests compose) and
/// restores the previously-installed hook when the last guard drops.
struct QuietPanics;

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Send + Sync>;

/// (nesting depth, the hook that was active before the first guard).
static QUIET_PANICS: std::sync::Mutex<(usize, Option<PanicHook>)> =
    std::sync::Mutex::new((0, None));

impl QuietPanics {
    fn install() -> QuietPanics {
        let mut state = QUIET_PANICS.lock().unwrap();
        if state.0 == 0 {
            state.1 = Some(std::panic::take_hook());
            std::panic::set_hook(Box::new(|_| {}));
        }
        state.0 += 1;
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let mut state = QUIET_PANICS.lock().unwrap();
        state.0 -= 1;
        if state.0 == 0 {
            match state.1.take() {
                Some(prev) => std::panic::set_hook(prev),
                None => drop(std::panic::take_hook()),
            }
        }
    }
}

/// Extracts a printable message from a panic payload.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Binary ladder toward zero for a raw tape entry: `[0, v - v/2, …, v - 1]`.
fn tape_entry_ladder(v: u64) -> Vec<u64> {
    if v == 0 {
        return Vec::new();
    }
    let mut out = vec![0u64];
    let mut delta = v / 2;
    while delta > 0 {
        out.push(v - delta);
        delta /= 2;
    }
    out
}

/// Runs `test` once and, if it fails, re-runs a non-panicking probe to find
/// the smallest failing input reachable through [`Strategy::shrink`].
/// Returns `None` when the case passes, `Some((minimal_input, message))`
/// when it fails. Value-level shrinking only; see
/// [`find_minimal_failure_with_tape`] for the generator-level variant the
/// [`proptest!`] macro uses.
pub fn find_minimal_failure<S>(
    strategy: &S,
    value: S::Value,
    test: &dyn Fn(&S::Value),
) -> Option<(S::Value, String)>
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
{
    find_minimal_failure_with_tape(strategy, value, None, test)
}

/// Like [`find_minimal_failure`], but additionally shrinks through the
/// failing case's recorded RNG tape (when one is supplied): each tape entry
/// is laddered toward zero and the case regenerated, which minimizes values
/// whose strategies cannot shrink directly (`prop_map`, `prop_flat_map`,
/// `prop_oneof!`).
///
/// Tape candidates are tried before value-level candidates: a value-level
/// adoption discards the tape (the adopted value was never generated from
/// one), whereas tape-level adoptions keep both levels usable.
pub fn find_minimal_failure_with_tape<S>(
    strategy: &S,
    value: S::Value,
    tape: Option<Vec<u64>>,
    test: &dyn Fn(&S::Value),
) -> Option<(S::Value, String)>
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    // Probes intentionally panic (the original case plus every still-failing
    // shrink candidate); silence the default hook so a failing property does
    // not spray hundreds of backtraces before the real minimal-input panic.
    let _quiet = QuietPanics::install();
    let probe = |v: &S::Value| catch_unwind(AssertUnwindSafe(|| test(v))).err();
    let mut payload = probe(&value)?;
    let mut best = value;
    let mut best_tape = tape;
    let mut steps = 0usize;
    'outer: while steps < MAX_SHRINK_STEPS {
        if let Some(t) = best_tape.clone() {
            for i in 0..t.len() {
                for entry in tape_entry_ladder(t[i]) {
                    steps += 1;
                    let mut t2 = t.clone();
                    t2[i] = entry;
                    // A mutated tape could, in principle, drive a generator
                    // into a panic; treat that candidate as unusable.
                    let Ok(v2) = catch_unwind(AssertUnwindSafe(|| replay_tape(strategy, &t2)))
                    else {
                        continue;
                    };
                    if let Some(p) = probe(&v2) {
                        best = v2;
                        best_tape = Some(t2);
                        payload = p;
                        continue 'outer;
                    }
                    if steps >= MAX_SHRINK_STEPS {
                        break 'outer;
                    }
                }
            }
        }
        for cand in strategy.shrink(&best) {
            steps += 1;
            if let Some(p) = probe(&cand) {
                // Greedy descent: adopt the first still-failing candidate.
                best = cand;
                best_tape = None;
                payload = p;
                continue 'outer;
            }
            if steps >= MAX_SHRINK_STEPS {
                break 'outer;
            }
        }
        break; // no candidate still fails: `best` is minimal
    }
    Some((best, payload_message(&*payload)))
}

/// Runs one generated case, shrinking on failure (tape-level then
/// value-level) and panicking with the reduced input — the runtime behind
/// the [`proptest!`] macro.
pub fn check_case<S, F>(strategy: &S, value: S::Value, tape: Vec<u64>, test: F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: Fn(&S::Value),
{
    if let Some((minimal, message)) =
        find_minimal_failure_with_tape(strategy, value, Some(tape), &test)
    {
        panic!(
            "proptest shim: case failed; minimal failing input: {minimal:?}\ncaused by: {message}"
        );
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_each {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            // One tuple strategy over all parameters: generation draws from
            // the RNG in declaration order (identical inputs to the
            // pre-shrinking shim) and failures shrink component-wise.
            let __strategy = ($($strat,)+);
            for __case in 0..__cfg.cases {
                // Record the raw draw tape alongside the value so failures
                // can shrink through the generator (tape) as well as the
                // value — mapped/flat-mapped/oneof strategies only shrink
                // via the tape.
                let (__vals, __tape) = $crate::generate_recorded(&__strategy, &mut __rng);
                $crate::check_case(&__strategy, __vals, __tape, |__vals| {
                    let ($($pat,)+) = ::core::clone::Clone::clone(__vals);
                    $body
                });
            }
        }
        $crate::__proptest_each! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 0u64..10, b in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!(a < 10);
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..4, 10u32..14).prop_map(|(x, y)| (y, x))) {
            prop_assert!(pair.0 >= 10 && pair.1 < 4);
        }

        #[test]
        fn flat_map_depends_on_outer(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u64..10, n..n + 1))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn regex_subset_strings(s in "[a-c]{2,4}", t in ".{0,8}") {
            prop_assert!((2..=4).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(t.chars().count() <= 8);
        }

        #[test]
        fn oneof_weighted(v in prop_oneof![1 => Just(0u8), 9 => Just(1u8)]) {
            prop_assert!(v <= 1);
        }
    }

    #[test]
    fn seeded_failure_shrinks_to_minimal_input() {
        // Property "v < 500" fails for any v in 500..1000; the minimal
        // failing input is exactly 500 and greedy range-shrinking must
        // reach it from any seed.
        let strategy = (0u64..1000,);
        let mut rng = crate::test_rng("shrink-to-minimal");
        let mut checked_failures = 0;
        for _ in 0..64 {
            let v = Strategy::generate(&strategy, &mut rng);
            let outcome =
                crate::find_minimal_failure(&strategy, v, &|&(v,): &(u64,)| assert!(v < 500));
            match outcome {
                None => {}
                Some((minimal, message)) => {
                    checked_failures += 1;
                    assert_eq!(minimal, (500,), "shrinking stopped early");
                    assert!(message.contains("v < 500"));
                }
            }
        }
        assert!(checked_failures > 0, "seed never produced a failing case");
    }

    #[test]
    fn failing_proptest_reports_shrunk_input() {
        // End-to-end through the macro: the panic message must carry the
        // *reduced* input (the boundary value 500), not the original random
        // draw.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[allow(unused)]
            fn value_is_small(v in 0u64..1000) {
                prop_assert!(v < 500);
            }
        }
        let result = std::panic::catch_unwind(value_is_small);
        let payload = result.expect_err("property should fail");
        let msg = crate::payload_message(&*payload);
        assert!(msg.contains("minimal failing input"), "unexpected message: {msg}");
        assert!(msg.contains("(500,)"), "not fully shrunk: {msg}");
        assert!(msg.contains("v < 500"), "original assertion lost: {msg}");
    }

    #[test]
    fn mapped_strategy_shrinks_via_rng_tape() {
        // `prop_map` has no value-level shrinker (the pre-image is lost);
        // the tape shrinker must still minimize: property "v < 1000" over
        // v = x * 2, x in 0..1000 has minimal failing value exactly 1000.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[allow(unused)]
            fn mapped_is_small(v in (0u64..1000).prop_map(|x| x * 2)) {
                prop_assert!(v < 1000);
            }
        }
        let result = std::panic::catch_unwind(mapped_is_small);
        let payload = result.expect_err("property should fail");
        let msg = crate::payload_message(&*payload);
        assert!(msg.contains("minimal failing input"), "unexpected message: {msg}");
        assert!(msg.contains("(1000,)"), "mapped value not fully shrunk: {msg}");
    }

    #[test]
    fn flat_mapped_strategy_shrinks_via_rng_tape() {
        // Length drawn by the outer strategy, elements by the inner one —
        // both live only on the tape. Minimal failing input for "len < 3"
        // is the all-zeros vector of length 3.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[allow(unused)]
            fn vec_is_short(
                v in (1usize..8).prop_flat_map(|n| crate::collection::vec(0u64..100, n..n + 1))
            ) {
                prop_assert!(v.len() < 3);
            }
        }
        let result = std::panic::catch_unwind(vec_is_short);
        let payload = result.expect_err("property should fail");
        let msg = crate::payload_message(&*payload);
        assert!(msg.contains("([0, 0, 0],)"), "flat-mapped value not fully shrunk: {msg}");
    }

    #[test]
    fn replayed_tape_reproduces_generation() {
        let strategy = ((0u64..1_000_000).prop_map(|x| x * 3), "[a-z]{1,12}");
        let mut rng = crate::test_rng("tape-roundtrip");
        for _ in 0..32 {
            let (value, tape) = crate::generate_recorded(&strategy, &mut rng);
            let replayed = crate::replay_tape(&strategy, &tape);
            assert_eq!(value, replayed, "replay must be a faithful function of the tape");
        }
    }

    #[test]
    fn shrink_candidates_respect_bounds() {
        let r = 10u64..1000;
        for cand in Strategy::shrink(&r, &500) {
            assert!((10..500).contains(&cand), "candidate {cand} out of range");
        }
        assert!(Strategy::shrink(&r, &10).is_empty());
        let v = crate::collection::vec(0u64..10, 2..6);
        let shrunk = Strategy::shrink(&v, &vec![5, 5, 5, 5]);
        assert!(shrunk.iter().all(|s| s.len() >= 2));
        assert!(shrunk.contains(&vec![5, 5]));
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s: String = Strategy::generate(&".{0,40}", &mut a);
        let t: String = Strategy::generate(&".{0,40}", &mut b);
        assert_eq!(s, t);
    }

    #[test]
    #[should_panic(expected = "unsupported regex")]
    fn unsupported_regex_panics() {
        let _ = Strategy::generate(&"(a|b)+", &mut crate::test_rng("y"));
    }
}
