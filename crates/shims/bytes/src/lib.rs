//! Minimal offline stand-in for the crates.io `bytes` crate.
//!
//! Implements exactly the API surface this workspace uses: the [`Buf`]
//! cursor-read extension on `&[u8]` and the [`BufMut`] append extension on
//! `Vec<u8>`, little-endian only. Semantics match the real crate for that
//! subset (including panics on under-length reads, which callers guard
//! against with explicit length checks).

/// Cursor-style reads from the front of a byte slice.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
    fn chunk(&self) -> &[u8];

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    fn get_i64_le(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Append-style writes to the end of a growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_i64_le(-42);
        buf.put_f64_le(3.5);
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 3.5);
        assert!(!r.has_remaining());
    }

    #[test]
    fn advance_moves_cursor() {
        let mut r: &[u8] = &[1, 2, 3, 4];
        r.advance(2);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8(), 3);
    }

    #[test]
    fn copy_to_slice_reads_exact() {
        let mut r: &[u8] = &[9, 8, 7];
        let mut dst = [0u8; 2];
        r.copy_to_slice(&mut dst);
        assert_eq!(dst, [9, 8]);
        assert_eq!(r.remaining(), 1);
    }
}
