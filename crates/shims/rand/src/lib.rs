//! Minimal offline stand-in for the crates.io `rand` crate.
//!
//! Provides the deterministic subset this workspace uses: a seedable
//! [`rngs::StdRng`] (xoshiro256++ seeded via splitmix64) and the [`Rng`]
//! extension methods `gen` and `gen_range`. Distributions are uniform; the
//! stream is stable across runs and platforms, which the graph generators
//! rely on for reproducible datasets.
//!
//! All sampling is defined over the [`RngCore`] source-of-randomness trait
//! (one method: `next_u64`), so wrappers can interpose on the raw draw
//! stream — the proptest shim's tape-recording/replaying `TestRng` is built
//! on exactly this seam.

/// The raw source of randomness: everything else derives from `next_u64`.
///
/// Implement this (and nothing else) to get the full [`Rng`] surface via the
/// blanket impl — including for wrappers that record or replay the draw
/// stream.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable RNG constructors.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full RNG output.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The subset of rand's `Rng` extension trait this workspace uses, provided
/// for every [`RngCore`] by a blanket impl.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded from a splitmix64 expansion of the u64 seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Crude uniformity check: mean near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn rng_core_wrappers_sample_identically() {
        // A wrapper that forwards next_u64 must reproduce StdRng's derived
        // sample streams exactly — the seam tape-recording RNGs rely on.
        struct Fwd(StdRng);
        impl RngCore for Fwd {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
        let mut plain = StdRng::seed_from_u64(5);
        let mut wrapped = Fwd(StdRng::seed_from_u64(5));
        for _ in 0..64 {
            assert_eq!(plain.gen_range(0..1000u64), wrapped.gen_range(0..1000u64));
            let a: f64 = plain.gen();
            let b: f64 = wrapped.gen();
            assert_eq!(a, b);
        }
    }
}
