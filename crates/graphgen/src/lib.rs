//! Graph and metadata generators for the Vertexica reproduction.
//!
//! The paper evaluates on SNAP social graphs (Twitter, GPlus, LiveJournal)
//! and extends them with rich per-node/per-edge metadata (§4). Those exact
//! datasets are not redistributable here, so this crate provides:
//!
//! * [`rmat`] — an R-MAT/Kronecker generator whose heavy-tailed degree
//!   distributions match social networks (the property the experiments
//!   exercise);
//! * [`models`] — classical models (Erdős–Rényi, Barabási–Albert, grid,
//!   star, chain, complete, bipartite) for tests and micro-benchmarks;
//! * [`profiles`] — named profiles `twitter`/`gplus`/`livejournal` matching
//!   the paper's node/edge counts at `scale = 1.0` and downscalable for CI;
//! * [`metadata`] — the §4 metadata schema: 24 uniform ints, 8 zipfian ints,
//!   18 floats, 10 strings per node; weight/timestamp/type per edge;
//! * [`snap_io`] — SNAP edge-list reading/writing so real datasets drop in;
//! * [`stats`] — degree statistics used by tests and EXPERIMENTS.md.

pub mod metadata;
pub mod models;
pub mod profiles;
pub mod rmat;
pub mod snap_io;
pub mod stats;

pub use profiles::{dataset, DatasetProfile};
pub use rmat::{rmat_graph, RmatConfig};
