//! Classical graph models for tests, examples and micro-benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vertexica_common::graph::{Edge, EdgeList};
use vertexica_common::FxHashSet;

/// Erdős–Rényi G(n, m): `m` distinct directed edges chosen uniformly.
pub fn erdos_renyi(n: u64, m: u64, seed: u64) -> EdgeList {
    assert!(n >= 2, "need at least two vertices");
    let max_edges = n * (n - 1);
    let m = m.min(max_edges);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: FxHashSet<(u64, u64)> = FxHashSet::default();
    let mut edges = Vec::with_capacity(m as usize);
    while (edges.len() as u64) < m {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        if src == dst || !seen.insert((src, dst)) {
            continue;
        }
        edges.push(Edge::new(src, dst));
    }
    EdgeList::new(n, edges)
}

/// Barabási–Albert preferential attachment: each new vertex attaches to `k`
/// existing vertices with probability proportional to degree. Produces an
/// undirected-style edge list (both directions emitted).
pub fn barabasi_albert(n: u64, k: u64, seed: u64) -> EdgeList {
    assert!(k >= 1 && n > k, "need n > k >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    // Repeated-endpoints list: sampling uniformly from it is degree-biased.
    let mut endpoints: Vec<u64> = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    // Seed clique over the first k+1 vertices.
    for i in 0..=k {
        for j in 0..i {
            edges.push(Edge::new(i, j));
            edges.push(Edge::new(j, i));
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in (k + 1)..n {
        let mut targets: FxHashSet<u64> = FxHashSet::default();
        while (targets.len() as u64) < k {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v {
                targets.insert(t);
            }
        }
        for t in targets {
            edges.push(Edge::new(v, t));
            edges.push(Edge::new(t, v));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    EdgeList::new(n, edges)
}

/// A directed chain 0 → 1 → … → n-1.
pub fn chain(n: u64) -> EdgeList {
    let edges = (0..n.saturating_sub(1)).map(|i| Edge::new(i, i + 1)).collect();
    EdgeList::new(n, edges)
}

/// A star: vertex 0 points to all others.
pub fn star(n: u64) -> EdgeList {
    let edges = (1..n).map(|i| Edge::new(0, i)).collect();
    EdgeList::new(n, edges)
}

/// A complete directed graph (all ordered pairs).
pub fn complete(n: u64) -> EdgeList {
    let mut edges = Vec::with_capacity((n * n.saturating_sub(1)) as usize);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                edges.push(Edge::new(i, j));
            }
        }
    }
    EdgeList::new(n, edges)
}

/// A 2-D grid with edges in both directions between 4-neighbours.
pub fn grid(rows: u64, cols: u64) -> EdgeList {
    let id = |r: u64, c: u64| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::new(id(r, c), id(r, c + 1)));
                edges.push(Edge::new(id(r, c + 1), id(r, c)));
            }
            if r + 1 < rows {
                edges.push(Edge::new(id(r, c), id(r + 1, c)));
                edges.push(Edge::new(id(r + 1, c), id(r, c)));
            }
        }
    }
    EdgeList::new(rows * cols, edges)
}

/// A bipartite "ratings" graph for collaborative filtering: `users` user
/// vertices (ids `0..users`) and `items` item vertices (ids
/// `users..users+items`). Each user rates ~`ratings_per_user` random items;
/// edge weight is the rating in `1.0..=5.0`. Edges run both ways so
/// user↔item message exchange works vertex-centrically.
pub fn bipartite_ratings(users: u64, items: u64, ratings_per_user: u64, seed: u64) -> EdgeList {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..users {
        let mut rated: FxHashSet<u64> = FxHashSet::default();
        let k = ratings_per_user.min(items);
        while (rated.len() as u64) < k {
            let item = users + rng.gen_range(0..items);
            if rated.insert(item) {
                let rating = rng.gen_range(1..=5) as f64;
                edges.push(Edge::weighted(u, item, rating));
                edges.push(Edge::weighted(item, u, rating));
            }
        }
    }
    EdgeList::new(users + items, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_counts() {
        let g = erdos_renyi(50, 200, 7);
        assert_eq!(g.num_vertices, 50);
        assert_eq!(g.num_edges(), 200);
        let mut seen = std::collections::HashSet::new();
        for e in &g.edges {
            assert_ne!(e.src, e.dst);
            assert!(seen.insert((e.src, e.dst)));
        }
    }

    #[test]
    fn erdos_renyi_caps_at_max_edges() {
        let g = erdos_renyi(3, 100, 7);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn barabasi_albert_rich_get_richer() {
        let g = barabasi_albert(500, 3, 11);
        let deg = g.out_degrees();
        let max = *deg.iter().max().unwrap();
        let mean = deg.iter().sum::<u64>() as f64 / deg.len() as f64;
        assert!(max as f64 > 3.0 * mean, "max {max} mean {mean}");
    }

    #[test]
    fn chain_star_complete_shapes() {
        assert_eq!(chain(5).num_edges(), 4);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(complete(4).num_edges(), 12);
        assert_eq!(chain(0).num_edges(), 0);
        assert_eq!(chain(1).num_edges(), 0);
    }

    #[test]
    fn grid_degree_bounds() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices, 12);
        let deg = g.out_degrees();
        assert!(deg.iter().all(|&d| (2..=4).contains(&d)));
        // Corner has exactly 2 neighbours.
        assert_eq!(deg[0], 2);
    }

    #[test]
    fn bipartite_respects_sides() {
        let users = 10;
        let items = 5;
        let g = bipartite_ratings(users, items, 3, 3);
        assert_eq!(g.num_vertices, 15);
        for e in &g.edges {
            let src_user = e.src < users;
            let dst_user = e.dst < users;
            assert_ne!(src_user, dst_user, "edge within one side");
            assert!((1.0..=5.0).contains(&e.weight));
        }
        // 10 users × 3 ratings × 2 directions.
        assert_eq!(g.num_edges(), 60);
    }
}
