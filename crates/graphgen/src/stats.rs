//! Degree statistics for generated graphs.

use vertexica_common::graph::EdgeList;

/// Summary degree statistics.
#[derive(Debug, Clone)]
pub struct DegreeStats {
    pub num_vertices: u64,
    pub num_edges: u64,
    pub max_out_degree: u64,
    pub mean_out_degree: f64,
    /// Fraction of vertices with zero out-degree.
    pub sink_fraction: f64,
    /// Gini coefficient of the out-degree distribution (0 = uniform,
    /// → 1 = concentrated on few hubs).
    pub gini: f64,
}

/// Computes degree statistics.
pub fn degree_stats(graph: &EdgeList) -> DegreeStats {
    let mut degrees = graph.out_degrees();
    let n = degrees.len().max(1);
    let max = degrees.iter().copied().max().unwrap_or(0);
    let total: u64 = degrees.iter().sum();
    let mean = total as f64 / n as f64;
    let sinks = degrees.iter().filter(|&&d| d == 0).count();

    degrees.sort_unstable();
    let gini = if total == 0 {
        0.0
    } else {
        // Gini via the sorted-rank formula.
        let sum_ranked: f64 =
            degrees.iter().enumerate().map(|(i, &d)| (i as f64 + 1.0) * d as f64).sum();
        (2.0 * sum_ranked) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
    };

    DegreeStats {
        num_vertices: graph.num_vertices,
        num_edges: graph.num_edges(),
        max_out_degree: max,
        mean_out_degree: mean,
        sink_fraction: sinks as f64 / n as f64,
        gini,
    }
}

/// Histogram of out-degrees in power-of-two buckets: `buckets[i]` counts
/// vertices with degree in `[2^i, 2^(i+1))`; bucket 0 counts degree 0..2.
pub fn degree_histogram(graph: &EdgeList) -> Vec<u64> {
    let degrees = graph.out_degrees();
    let mut buckets = vec![0u64; 33];
    for d in degrees {
        let b = if d < 2 { 0 } else { 64 - (d.leading_zeros() as usize) - 1 };
        buckets[b.min(32)] += 1;
    }
    while buckets.len() > 1 && *buckets.last().unwrap() == 0 {
        buckets.pop();
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{complete, star};

    #[test]
    fn uniform_graph_low_gini() {
        let g = complete(20);
        let s = degree_stats(&g);
        assert_eq!(s.max_out_degree, 19);
        assert!(s.gini.abs() < 1e-9);
        assert_eq!(s.sink_fraction, 0.0);
    }

    #[test]
    fn star_graph_high_gini() {
        let g = star(100);
        let s = degree_stats(&g);
        assert_eq!(s.max_out_degree, 99);
        assert!(s.gini > 0.9);
        assert!((s.sink_fraction - 0.99).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_is_safe() {
        let g = EdgeList::new(0, vec![]);
        let s = degree_stats(&g);
        assert_eq!(s.max_out_degree, 0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let g = star(100); // one vertex deg 99, 99 vertices deg 0
        let h = degree_histogram(&g);
        assert_eq!(h[0], 99);
        assert_eq!(h[6], 1); // 99 ∈ [64, 128)
        assert_eq!(h.iter().sum::<u64>(), 100);
    }
}
