//! The §4 metadata generator.
//!
//! "For each node, we added 24 uniformly distributed integer attributes with
//! cardinality varying from 2 to 10⁹, 8 skewed (zipfian distribution) integer
//! attributes with varying skewness, 18 floating point attributes with
//! varying value ranges, and 10 string attributes with varying size and
//! cardinality. For each edge, we added three additional attributes: the
//! weight, the creation timestamp, and an edge type (friend, family, or
//! classmate), chosen uniformly at random."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vertexica_common::graph::EdgeList;

/// Per-node metadata row.
#[derive(Debug, Clone)]
pub struct NodeMeta {
    pub id: u64,
    /// 24 uniform integers, cardinalities 2..=1e9 (varying per attribute).
    pub uniform_ints: Vec<i64>,
    /// 8 zipfian integers with exponents 0.5..=2.25.
    pub zipf_ints: Vec<i64>,
    /// 18 floats with value ranges 1, 10, 100, ….
    pub floats: Vec<f64>,
    /// 10 strings with varying length and cardinality.
    pub strings: Vec<String>,
}

/// Per-edge metadata.
#[derive(Debug, Clone)]
pub struct EdgeMeta {
    pub src: u64,
    pub dst: u64,
    pub weight: f64,
    pub created: i64,
    pub etype: &'static str,
}

/// The paper's three edge types.
pub const EDGE_TYPES: [&str; 3] = ["friend", "family", "classmate"];

/// Cardinality for the i-th uniform integer attribute: 2, ~8, ~32 … up to 1e9.
pub fn uniform_cardinality(attr: usize) -> i64 {
    // Geometric progression from 2 to 1e9 over 24 attributes.
    let exp = attr as f64 / 23.0 * (1e9f64.ln() - 2f64.ln()) + 2f64.ln();
    exp.exp().round() as i64
}

/// Zipf exponent for the i-th skewed attribute: 0.5, 0.75, … 2.25.
pub fn zipf_exponent(attr: usize) -> f64 {
    0.5 + attr as f64 * 0.25
}

/// Samples from a Zipf distribution over `1..=n` with exponent `s` via
/// inverse-CDF on precomputed cumulative weights (n is capped at 10k, which
/// is plenty of distinct values for skewed attributes).
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Zipf {
        let n = n.clamp(1, 10_000);
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    pub fn sample(&self, rng: &mut StdRng) -> i64 {
        let total = *self.cumulative.last().unwrap();
        let r = rng.gen::<f64>() * total;
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&r).unwrap()) {
            Ok(i) | Err(i) => (i + 1) as i64,
        }
    }
}

/// Generates the full node-metadata table.
pub fn node_metadata(num_vertices: u64, seed: u64) -> Vec<NodeMeta> {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipfs: Vec<Zipf> = (0..8).map(|i| Zipf::new(1000, zipf_exponent(i))).collect();
    let string_cardinalities: [usize; 10] = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    (0..num_vertices)
        .map(|id| {
            let uniform_ints = (0..24).map(|a| rng.gen_range(0..uniform_cardinality(a))).collect();
            let zipf_ints = zipfs.iter().map(|z| z.sample(&mut rng)).collect();
            let floats = (0..18).map(|a| rng.gen::<f64>() * 10f64.powi(a % 6)).collect();
            let strings = (0..10)
                .map(|a| {
                    let card = string_cardinalities[a];
                    let v = rng.gen_range(0..card);
                    // Length grows with the attribute index.
                    format!("attr{a}_{v:0width$}", width = 2 + a)
                })
                .collect();
            NodeMeta { id, uniform_ints, zipf_ints, floats, strings }
        })
        .collect()
}

/// Generates edge metadata for an edge list: weight in `(0, 1]`, creation
/// timestamps spread over `[t0, t1)`, and a uniformly random type.
pub fn edge_metadata(graph: &EdgeList, t0: i64, t1: i64, seed: u64) -> Vec<EdgeMeta> {
    let mut rng = StdRng::seed_from_u64(seed);
    graph
        .edges
        .iter()
        .map(|e| EdgeMeta {
            src: e.src,
            dst: e.dst,
            weight: rng.gen::<f64>().max(f64::MIN_POSITIVE),
            created: rng.gen_range(t0..t1.max(t0 + 1)),
            etype: EDGE_TYPES[rng.gen_range(0..EDGE_TYPES.len())],
        })
        .collect()
}

/// Column names for the node metadata table, in order:
/// `u0..u23, z0..z7, f0..f17, s0..s9`.
pub fn node_meta_columns() -> Vec<String> {
    let mut cols = Vec::with_capacity(60);
    for i in 0..24 {
        cols.push(format!("u{i}"));
    }
    for i in 0..8 {
        cols.push(format!("z{i}"));
    }
    for i in 0..18 {
        cols.push(format!("f{i}"));
    }
    for i in 0..10 {
        cols.push(format!("s{i}"));
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use vertexica_common::graph::EdgeList;

    #[test]
    fn schema_matches_paper() {
        let metas = node_metadata(10, 1);
        assert_eq!(metas.len(), 10);
        for m in &metas {
            assert_eq!(m.uniform_ints.len(), 24);
            assert_eq!(m.zipf_ints.len(), 8);
            assert_eq!(m.floats.len(), 18);
            assert_eq!(m.strings.len(), 10);
        }
        assert_eq!(node_meta_columns().len(), 60);
    }

    #[test]
    fn cardinalities_span_2_to_1e9() {
        assert_eq!(uniform_cardinality(0), 2);
        let last = uniform_cardinality(23);
        assert!((last as f64 - 1e9).abs() / 1e9 < 0.01, "got {last}");
        // Monotone increasing.
        for a in 1..24 {
            assert!(uniform_cardinality(a) >= uniform_cardinality(a - 1));
        }
    }

    #[test]
    fn uniform_values_respect_cardinality() {
        let metas = node_metadata(500, 2);
        for m in &metas {
            assert!(m.uniform_ints[0] < 2);
            assert!(m.uniform_ints[23] < uniform_cardinality(23));
        }
        // First attribute (cardinality 2) takes both values.
        let distinct: std::collections::HashSet<i64> =
            metas.iter().map(|m| m.uniform_ints[0]).collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(1000, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<i64> = (0..10_000).map(|_| z.sample(&mut rng)).collect();
        let ones = samples.iter().filter(|&&v| v == 1).count();
        let hundreds = samples.iter().filter(|&&v| v == 100).count();
        assert!(ones > 100 * hundreds.max(1) / 10, "ones {ones} hundreds {hundreds}");
        assert!(samples.iter().all(|&v| (1..=1000).contains(&v)));
    }

    #[test]
    fn higher_exponent_more_skew() {
        let mut rng = StdRng::seed_from_u64(4);
        let mild = Zipf::new(1000, 0.5);
        let harsh = Zipf::new(1000, 2.25);
        let mean = |z: &Zipf, rng: &mut StdRng| {
            (0..5000).map(|_| z.sample(rng) as f64).sum::<f64>() / 5000.0
        };
        assert!(mean(&mild, &mut rng) > mean(&harsh, &mut rng));
    }

    #[test]
    fn edge_metadata_fields() {
        let g = EdgeList::from_pairs([(0, 1), (1, 2), (2, 0)]);
        let metas = edge_metadata(&g, 1000, 2000, 5);
        assert_eq!(metas.len(), 3);
        for m in &metas {
            assert!(m.weight > 0.0 && m.weight <= 1.0);
            assert!((1000..2000).contains(&m.created));
            assert!(EDGE_TYPES.contains(&m.etype));
        }
    }

    #[test]
    fn edge_types_roughly_uniform() {
        let g = EdgeList::from_pairs((0..3000u64).map(|i| (i % 50, (i + 1) % 50)));
        let metas = edge_metadata(&g, 0, 10, 6);
        for t in EDGE_TYPES {
            let c = metas.iter().filter(|m| m.etype == t).count();
            assert!(c > 800 && c < 1200, "type {t} count {c}");
        }
    }

    #[test]
    fn deterministic_metadata() {
        let a = node_metadata(5, 9);
        let b = node_metadata(5, 9);
        assert_eq!(a[3].uniform_ints, b[3].uniform_ints);
        assert_eq!(a[3].strings, b[3].strings);
    }
}
