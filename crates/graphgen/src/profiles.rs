//! Named dataset profiles matching the paper's evaluation graphs.
//!
//! Figure 2 reports on Twitter (≈81K nodes, 1.7M edges), GPlus (≈107K nodes,
//! 13.6M edges) and LiveJournal (4.8M nodes, 68M edges). At `scale = 1.0`
//! these profiles generate R-MAT graphs with matching node/edge counts; the
//! benchmark harness downscales them (`VERTEXICA_SCALE` env var) so the
//! experiment matrix completes in CI time while preserving the small/medium/
//! large ordering and density differences.

use vertexica_common::graph::EdgeList;

use crate::rmat::{rmat_graph, RmatConfig};

/// A named dataset profile.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    pub name: &'static str,
    /// Node count at scale 1.0 (paper's figure-2 table).
    pub nodes: u64,
    /// Edge count at scale 1.0.
    pub edges: u64,
}

/// The three Figure-2 datasets.
pub const PROFILES: &[DatasetProfile] = &[
    DatasetProfile { name: "twitter", nodes: 81_306, edges: 1_768_149 },
    DatasetProfile { name: "gplus", nodes: 107_614, edges: 13_673_453 },
    DatasetProfile { name: "livejournal", nodes: 4_847_571, edges: 68_993_773 },
];

/// Looks up a profile by name.
pub fn profile(name: &str) -> Option<&'static DatasetProfile> {
    PROFILES.iter().find(|p| p.name.eq_ignore_ascii_case(name))
}

impl DatasetProfile {
    /// Generates the dataset at a linear scale factor in `(0, 1]`.
    /// Node and edge counts shrink proportionally; the degree distribution
    /// shape is preserved by R-MAT self-similarity.
    pub fn generate(&self, scale: f64, seed: u64) -> EdgeList {
        let scale = scale.clamp(1e-6, 1.0);
        let nodes = ((self.nodes as f64 * scale).ceil() as u64).max(16);
        let edges = ((self.edges as f64 * scale).ceil() as u64).max(nodes);
        let log2_nodes = 64 - (nodes - 1).leading_zeros();
        rmat_graph(&RmatConfig { scale: log2_nodes, num_edges: edges, seed, ..Default::default() })
    }
}

/// Convenience: generate a named dataset at a scale.
pub fn dataset(name: &str, scale: f64, seed: u64) -> Option<EdgeList> {
    profile(name).map(|p| p.generate(scale, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_figure2() {
        assert!(profile("twitter").is_some());
        assert!(profile("GPLUS").is_some());
        assert!(profile("livejournal").is_some());
        assert!(profile("facebook").is_none());
    }

    #[test]
    fn relative_sizes_preserved() {
        let t = profile("twitter").unwrap();
        let g = profile("gplus").unwrap();
        let l = profile("livejournal").unwrap();
        assert!(t.edges < g.edges && g.edges < l.edges);
        assert!(t.nodes < g.nodes && g.nodes < l.nodes);
        // GPlus is much denser than Twitter (the paper's crossover driver).
        let t_density = t.edges as f64 / t.nodes as f64;
        let g_density = g.edges as f64 / g.nodes as f64;
        assert!(g_density > 3.0 * t_density);
    }

    #[test]
    fn downscaled_generation() {
        let g = dataset("twitter", 0.01, 1).unwrap();
        // ~813 nodes rounded up to a power of two, ~17.7K edges.
        assert!(g.num_vertices >= 813);
        assert!(g.num_edges() > 10_000);
        assert!(g.num_edges() < 20_000);
    }

    #[test]
    fn scale_is_clamped() {
        let p = DatasetProfile { name: "tiny", nodes: 100, edges: 500 };
        let over = p.generate(50.0, 1);
        let exact = p.generate(1.0, 1);
        assert_eq!(over.num_vertices, exact.num_vertices);
        assert_eq!(over.num_edges(), exact.num_edges());
    }
}
