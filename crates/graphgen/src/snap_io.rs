//! SNAP edge-list I/O.
//!
//! The paper pulls its datasets from <http://snap.stanford.edu/data/>. SNAP
//! distributes graphs as whitespace-separated `src dst` lines with `#`
//! comments. This module reads and writes that format (with buffered I/O and
//! a reusable line buffer, as the perf guide prescribes), remapping arbitrary
//! ids to the dense `0..n` space the engines expect.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use vertexica_common::graph::{Edge, EdgeList};
use vertexica_common::FxHashMap;

/// Parses SNAP format from any reader. Returns the graph and the mapping
/// from original ids to dense ids.
pub fn read_snap(reader: impl Read) -> std::io::Result<(EdgeList, FxHashMap<u64, u64>)> {
    let mut br = BufReader::new(reader);
    let mut line = String::new();
    let mut remap: FxHashMap<u64, u64> = FxHashMap::default();
    let mut edges = Vec::new();
    let mut next_id = 0u64;
    let dense = |orig: u64, next_id: &mut u64, remap: &mut FxHashMap<u64, u64>| -> u64 {
        *remap.entry(orig).or_insert_with(|| {
            let id = *next_id;
            *next_id += 1;
            id
        })
    };
    loop {
        line.clear();
        if br.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed edge line: {trimmed:?}"),
            ));
        };
        let parse = |s: &str| {
            s.parse::<u64>().map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad vertex id: {s:?}"),
                )
            })
        };
        let src = dense(parse(a)?, &mut next_id, &mut remap);
        let dst = dense(parse(b)?, &mut next_id, &mut remap);
        // Optional third column = weight.
        let weight = parts.next().and_then(|w| w.parse::<f64>().ok()).unwrap_or(1.0);
        edges.push(Edge::weighted(src, dst, weight));
    }
    Ok((EdgeList::new(next_id, edges), remap))
}

/// Reads a SNAP file from disk.
pub fn read_snap_file(path: impl AsRef<Path>) -> std::io::Result<EdgeList> {
    let f = std::fs::File::open(path)?;
    Ok(read_snap(f)?.0)
}

/// Writes a graph in SNAP format.
pub fn write_snap(graph: &EdgeList, writer: impl Write) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# Nodes: {} Edges: {}", graph.num_vertices, graph.num_edges())?;
    for e in &graph.edges {
        writeln!(w, "{}\t{}", e.src, e.dst)?;
    }
    w.flush()
}

/// Writes a graph to a SNAP file on disk.
pub fn write_snap_file(graph: &EdgeList, path: impl AsRef<Path>) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_snap(graph, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snap_with_comments() {
        let text = "# Directed graph\n# FromNodeId ToNodeId\n10 20\n20 30\n10 30\n";
        let (g, remap) = read_snap(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices, 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(remap[&10], 0);
        assert_eq!(remap[&20], 1);
        assert_eq!(remap[&30], 2);
    }

    #[test]
    fn parses_weights_when_present() {
        let text = "0 1 2.5\n1 0 0.5\n";
        let (g, _) = read_snap(text.as_bytes()).unwrap();
        assert_eq!(g.edges[0].weight, 2.5);
        assert_eq!(g.edges[1].weight, 0.5);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_snap("0\n".as_bytes()).is_err());
        assert!(read_snap("a b\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_and_blank_lines_ok() {
        let (g, _) = read_snap("\n\n# only comments\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let g = EdgeList::from_pairs([(0, 1), (1, 2), (2, 0)]);
        let mut buf = Vec::new();
        write_snap(&g, &mut buf).unwrap();
        let (back, _) = read_snap(buf.as_slice()).unwrap();
        assert_eq!(back.num_vertices, 3);
        assert_eq!(back.num_edges(), 3);
        assert_eq!(
            back.edges.iter().map(|e| (e.src, e.dst)).collect::<Vec<_>>(),
            g.edges.iter().map(|e| (e.src, e.dst)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn file_roundtrip() {
        let g = EdgeList::from_pairs([(5, 6), (6, 7)]);
        let path = std::env::temp_dir().join(format!("snap_test_{}.txt", std::process::id()));
        write_snap_file(&g, &path).unwrap();
        let back = read_snap_file(&path).unwrap();
        assert_eq!(back.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }
}
