//! R-MAT (recursive matrix) graph generator.
//!
//! R-MAT with the canonical `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`
//! partition probabilities produces the heavy-tailed in/out-degree
//! distributions characteristic of social graphs — the workload property the
//! paper's experiments depend on (message-volume skew, hub vertices).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vertexica_common::graph::{Edge, EdgeList};

/// R-MAT parameters.
#[derive(Debug, Clone)]
pub struct RmatConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges to generate.
    pub num_edges: u64,
    /// Quadrant probabilities; must sum to ~1.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Noise added per recursion level to avoid exact self-similarity.
    pub noise: f64,
    /// Drop duplicate (src, dst) pairs.
    pub dedup: bool,
    /// Drop self-loops.
    pub drop_self_loops: bool,
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            scale: 10,
            num_edges: 8 * 1024,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.05,
            dedup: true,
            drop_self_loops: true,
            seed: 42,
        }
    }
}

impl RmatConfig {
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }
}

/// Generates an R-MAT graph.
pub fn rmat_graph(config: &RmatConfig) -> EdgeList {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.num_vertices();
    let mut edges = Vec::with_capacity(config.num_edges as usize);
    let d = 1.0 - config.a - config.b - config.c;
    assert!(d >= 0.0, "quadrant probabilities exceed 1");

    let mut seen = if config.dedup { Some(vertexica_common::FxHashSet::default()) } else { None };

    let mut attempts: u64 = 0;
    let max_attempts = config.num_edges.saturating_mul(20).max(1000);
    while (edges.len() as u64) < config.num_edges && attempts < max_attempts {
        attempts += 1;
        let (mut x0, mut x1) = (0u64, n - 1);
        let (mut y0, mut y1) = (0u64, n - 1);
        for _ in 0..config.scale {
            // Per-level jitter on the quadrant probabilities.
            let jitter = |p: f64, rng: &mut StdRng| {
                (p * (1.0 - config.noise + 2.0 * config.noise * rng.gen::<f64>())).max(0.0)
            };
            let (pa, pb, pc) = (
                jitter(config.a, &mut rng),
                jitter(config.b, &mut rng),
                jitter(config.c, &mut rng),
            );
            let pd = jitter(d, &mut rng);
            let total = pa + pb + pc + pd;
            let r = rng.gen::<f64>() * total;
            let xm = (x0 + x1) / 2;
            let ym = (y0 + y1) / 2;
            if r < pa {
                x1 = xm;
                y1 = ym;
            } else if r < pa + pb {
                x1 = xm;
                y0 = ym + 1;
            } else if r < pa + pb + pc {
                x0 = xm + 1;
                y1 = ym;
            } else {
                x0 = xm + 1;
                y0 = ym + 1;
            }
        }
        let (src, dst) = (x0, y0);
        if config.drop_self_loops && src == dst {
            continue;
        }
        if let Some(seen) = &mut seen {
            if !seen.insert((src, dst)) {
                continue;
            }
        }
        edges.push(Edge::new(src, dst));
    }
    EdgeList::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn generates_requested_edge_count() {
        let g = rmat_graph(&RmatConfig { scale: 8, num_edges: 1000, ..Default::default() });
        assert_eq!(g.num_vertices, 256);
        // Dedup may fall slightly short on tiny graphs but not by much.
        assert!(g.num_edges() >= 900, "got {}", g.num_edges());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = RmatConfig { scale: 8, num_edges: 500, ..Default::default() };
        let g1 = rmat_graph(&cfg);
        let g2 = rmat_graph(&cfg);
        assert_eq!(g1.edges.len(), g2.edges.len());
        assert_eq!(g1.edges[10], g2.edges[10]);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = rmat_graph(&RmatConfig { seed: 1, ..Default::default() });
        let g2 = rmat_graph(&RmatConfig { seed: 2, ..Default::default() });
        assert_ne!(
            g1.edges.iter().map(|e| (e.src, e.dst)).collect::<Vec<_>>(),
            g2.edges.iter().map(|e| (e.src, e.dst)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn no_self_loops_or_duplicates_by_default() {
        let g = rmat_graph(&RmatConfig { scale: 8, num_edges: 2000, ..Default::default() });
        let mut seen = std::collections::HashSet::new();
        for e in &g.edges {
            assert_ne!(e.src, e.dst);
            assert!(seen.insert((e.src, e.dst)));
        }
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let g = rmat_graph(&RmatConfig { scale: 12, num_edges: 40_000, ..Default::default() });
        let s = degree_stats(&g);
        // A power-lawish graph has max degree far above the mean.
        assert!(
            s.max_out_degree as f64 > 10.0 * s.mean_out_degree,
            "max {} mean {}",
            s.max_out_degree,
            s.mean_out_degree
        );
    }

    #[test]
    fn all_ids_in_range() {
        let g = rmat_graph(&RmatConfig { scale: 6, num_edges: 300, ..Default::default() });
        for e in &g.edges {
            assert!(e.src < g.num_vertices && e.dst < g.num_vertices);
        }
    }
}
